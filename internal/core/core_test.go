package core

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/signals"
)

var cachedDS *datasets.Dataset

func dataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	if cachedDS == nil {
		ds, err := datasets.Generate(datasets.ReVerb45K(0.008))
		if err != nil {
			t.Fatal(err)
		}
		cachedDS = ds
	}
	return cachedDS
}

func resources(t *testing.T) (*signals.Resources, *datasets.Dataset) {
	ds := dataset(t)
	return signals.New(ds.OKB, ds.CKB, ds.Emb, ds.PPDB), ds
}

func labelsOf(ds *datasets.Dataset) *Labels {
	return &Labels{
		NPLink:    ds.ValidationNPLinks(),
		RPLink:    ds.ValidationRPLinks(),
		NPCluster: ds.ValidationNPClusters(),
		RPCluster: ds.ValidationRPClusters(),
	}
}

func TestSystemConstruction(t *testing.T) {
	res, _ := resources(t)
	s, err := NewSystem(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph()
	if g.NumVariables() == 0 || g.NumFactors() == 0 {
		t.Fatal("empty graph")
	}
	if s.stats.NPPairVars == 0 {
		t.Error("no blocked NP pairs — blocking too strict for the dataset")
	}
	if s.stats.NPLinkVars != len(res.OKB.NPs()) {
		t.Error("one linking variable per NP surface expected")
	}
	// Schedule covers all factors exactly once.
	covered := 0
	for _, grp := range s.Schedule().FactorGroups {
		covered += len(grp)
	}
	if covered != g.NumFactors() {
		t.Errorf("schedule covers %d of %d factors", covered, g.NumFactors())
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	res, _ := resources(t)
	cfg := DefaultConfig()
	cfg.EnableCanon = false
	cfg.EnableLink = false
	if _, err := NewSystem(res, cfg); err == nil {
		t.Error("want error when both tasks disabled")
	}
}

func TestJointRunEndToEnd(t *testing.T) {
	res, ds := resources(t)
	s, err := NewSystem(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	result := s.Run(labelsOf(ds))

	if len(result.NPGroups) == 0 || len(result.RPGroups) == 0 {
		t.Fatal("no groups produced")
	}
	if len(result.NPLinks) != len(res.OKB.NPs()) {
		t.Errorf("links for %d of %d NPs", len(result.NPLinks), len(res.OKB.NPs()))
	}
	if result.Stats.Sweeps == 0 || result.Stats.TrainIters == 0 {
		t.Errorf("stats not recorded: %+v", result.Stats)
	}

	// Quality floor: far better than chance on both tasks.
	canon := metrics.Evaluate(result.NPGroups, ds.GoldNPCluster)
	if canon.AverageF1 < 0.5 {
		t.Errorf("NP canonicalization avg F1 = %.3f, want >= 0.5", canon.AverageF1)
	}
	acc := metrics.Accuracy(result.NPLinks, ds.GoldNPLink)
	if acc < 0.5 {
		t.Errorf("entity linking accuracy = %.3f, want >= 0.5", acc)
	}
	rpAcc := metrics.Accuracy(result.RPLinks, ds.GoldRPLink)
	if rpAcc < 0.4 {
		t.Errorf("relation linking accuracy = %.3f, want >= 0.4", rpAcc)
	}
}

func TestCanonOnlyAndLinkOnly(t *testing.T) {
	res, ds := resources(t)

	cano, err := NewSystem(res, CanonOnlyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc := cano.Run(labelsOf(ds))
	if len(rc.NPGroups) == 0 {
		t.Error("JOCLcano produced no groups")
	}
	if len(rc.NPLinks) != 0 {
		t.Error("JOCLcano should not produce links")
	}

	link, err := NewSystem(res, LinkOnlyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rl := link.Run(labelsOf(ds))
	if len(rl.NPLinks) == 0 {
		t.Error("JOCLlink produced no links")
	}
	if len(rl.NPGroups) == 0 {
		t.Error("JOCLlink should still report link-derived groups")
	}
}

func TestRunWithoutLabels(t *testing.T) {
	res, _ := resources(t)
	s, err := NewSystem(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	result := s.Run(nil)
	if result.Stats.TrainIters != 0 {
		t.Error("no labels should mean no training")
	}
	if len(result.NPGroups) == 0 {
		t.Error("unsupervised run should still infer groups")
	}
}

func TestFeatureAblationConfigs(t *testing.T) {
	res, ds := resources(t)
	for _, fs := range []FeatureSet{SingleFeatures(), DoubleFeatures(), AllFeatures()} {
		cfg := DefaultConfig()
		cfg.Features = fs
		s, err := NewSystem(res, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run(labelsOf(ds))
		if len(r.NPGroups) == 0 {
			t.Errorf("feature set %+v produced nothing", fs)
		}
	}
}

func TestGroupsPartitionPhrases(t *testing.T) {
	res, ds := resources(t)
	s, err := NewSystem(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(labelsOf(ds))
	seen := map[string]bool{}
	for _, g := range r.NPGroups {
		for _, p := range g {
			if seen[p] {
				t.Fatalf("phrase %q in two groups", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != len(res.OKB.NPs()) {
		t.Errorf("groups cover %d of %d NPs", len(seen), len(res.OKB.NPs()))
	}
}

func TestResolveConflicts(t *testing.T) {
	phrases := []string{"a", "b", "c", "d"}
	links := map[string]string{"a": "e1", "b": "e2", "c": "e1", "d": "e1"}
	// a-b positive but linked differently; e1's group (3 members) wins.
	fixes, moved := resolveConflicts(phrases, [][2]int{{0, 1}}, links, map[string]float64{})
	if fixes != 1 {
		t.Fatalf("fixes = %d, want 1", fixes)
	}
	if len(moved) != 1 || moved[0] != "b" {
		t.Errorf("moved = %v, want [b]", moved)
	}
	if links["b"] != "e1" {
		t.Errorf("b should adopt e1, got %q", links["b"])
	}
	// Agreeing pair: no fix.
	if n, _ := resolveConflicts(phrases, [][2]int{{0, 2}}, links, map[string]float64{}); n != 0 {
		t.Error("agreeing pair should not be fixed")
	}
}

func TestResolveConflictsTieBreak(t *testing.T) {
	phrases := []string{"a", "b"}
	links := map[string]string{"a": "e2", "b": "e1"}
	resolveConflicts(phrases, [][2]int{{0, 1}}, links, map[string]float64{})
	// Equal group sizes: smaller id wins deterministically.
	if links["a"] != "e1" || links["b"] != "e1" {
		t.Errorf("tie break wrong: %v", links)
	}
}

func TestGroupsByLink(t *testing.T) {
	phrases := []string{"x", "y", "z", "w"}
	links := map[string]string{"x": "e1", "y": "e1", "z": "", "w": "e2"}
	groups := groupsByLink(phrases, links)
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != "x" {
		t.Errorf("e1 group wrong: %v", groups[0])
	}
}

func TestLabelStatesMapping(t *testing.T) {
	res, ds := resources(t)
	s, err := NewSystem(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lab := s.labelStates(labelsOf(ds))
	if len(lab) == 0 {
		t.Fatal("no labels mapped onto graph variables")
	}
	for vid, state := range lab {
		if state < 0 || state >= s.Graph().Variable(vid).Card {
			t.Fatalf("label state %d out of range for variable %d", state, vid)
		}
	}
	// Nil labels map to nothing.
	if got := s.labelStates(nil); len(got) != 0 {
		t.Error("nil labels should produce no clamps")
	}
}

func TestExtendedFeaturesRun(t *testing.T) {
	res, ds := resources(t)
	cfg := DefaultConfig()
	cfg.Features = ExtendedFeatures()
	s, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(labelsOf(ds))
	if len(r.NPGroups) == 0 || len(r.NPLinks) == 0 {
		t.Fatal("extended feature set produced no output")
	}
	// The extension weights must be registered and learnable.
	w := s.WeightValues()
	if _, ok := w["alpha1.attr"]; !ok {
		t.Error("alpha1.attr weight missing")
	}
	if _, ok := w["alpha4.type"]; !ok {
		t.Error("alpha4.type weight missing")
	}
}

func TestWeightValuesComplete(t *testing.T) {
	res, _ := resources(t)
	s, err := NewSystem(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := s.WeightValues()
	for _, name := range []string{
		"alpha1.idf", "alpha1.emb", "alpha1.ppdb",
		"alpha2.amie", "alpha2.kbp",
		"alpha4.pop", "alpha4.nil", "alpha5.ngram", "alpha5.ld", "alpha5.nil",
		"beta1.trans.np", "beta2.trans.rp", "beta4.fact",
		"beta5.cons.np", "beta6.cons.rp",
	} {
		if _, ok := w[name]; !ok {
			t.Errorf("weight %q not registered", name)
		}
	}
}

func TestInitialWeightsApplied(t *testing.T) {
	res, _ := resources(t)
	cfg := DefaultConfig()
	cfg.InitialWeights = map[string]float64{"alpha1.idf": 2.5, "nonexistent": 9}
	s, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.WeightValues()["alpha1.idf"]; got != 2.5 {
		t.Errorf("alpha1.idf = %v, want 2.5", got)
	}
}

func TestLinkAgreementPairs(t *testing.T) {
	phrases := []string{"a", "b", "c", "d"}
	links := map[string]string{"a": "e1", "b": "e1", "c": "e1", "d": ""}
	conf := map[string]float64{"a": 0.9, "b": 0.9, "c": 0.2, "d": 0.9}
	pairs := linkAgreementPairs(phrases, links, conf, 0.5)
	// a and b agree confidently; c is below confidence; d is NIL.
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Errorf("pairs = %v, want [[0 1]]", pairs)
	}
}
