package core

import "repro/internal/factorgraph"

// Feature names accepted by FeatureSet, matching the paper's f vectors.
const (
	FeatIDF   = "idf"   // IDF token overlap (NP + RP canonicalization)
	FeatEmb   = "emb"   // word-embedding cosine (all four factors)
	FeatPPDB  = "ppdb"  // paraphrase DB (all four factors)
	FeatAMIE  = "amie"  // AMIE rules (RP canonicalization)
	FeatKBP   = "kbp"   // KBP categories (RP canonicalization)
	FeatPop   = "pop"   // anchor popularity (entity linking)
	FeatNgram = "ngram" // character n-grams (relation linking)
	FeatLD    = "ld"    // Levenshtein (relation linking)

	// Extension signals beyond the paper's ten, exercising the claim
	// that the framework "is able to extend to fit any new signals":
	FeatAttr = "attr" // attribute overlap (NP canonicalization)
	FeatType = "type" // type compatibility (entity linking)
)

// FeatureSet selects the feature functions of each factor family —
// the rows of the paper's Table 5.
type FeatureSet struct {
	NPCanon []string // F1/F3 features: subset of {idf, emb, ppdb}
	RPCanon []string // F2 features: subset of {idf, emb, ppdb, amie, kbp}
	EntLink []string // F4/F6 features: subset of {pop, emb, ppdb}
	RelLink []string // F5 features: subset of {ngram, ld, emb, ppdb}
}

// AllFeatures returns the full JOCL-all feature set (f1, f2, f4, f5).
func AllFeatures() FeatureSet {
	return FeatureSet{
		NPCanon: []string{FeatIDF, FeatEmb, FeatPPDB},
		RPCanon: []string{FeatIDF, FeatEmb, FeatPPDB, FeatAMIE, FeatKBP},
		EntLink: []string{FeatPop, FeatEmb, FeatPPDB},
		RelLink: []string{FeatNgram, FeatLD, FeatEmb, FeatPPDB},
	}
}

// SingleFeatures returns the JOCL-single ablation of Table 5.
func SingleFeatures() FeatureSet {
	return FeatureSet{
		NPCanon: []string{FeatIDF},
		RPCanon: []string{FeatIDF},
		EntLink: []string{FeatPop},
		RelLink: []string{FeatNgram},
	}
}

// DoubleFeatures returns the JOCL-double ablation of Table 5.
func DoubleFeatures() FeatureSet {
	return FeatureSet{
		NPCanon: []string{FeatIDF, FeatEmb},
		RPCanon: []string{FeatIDF, FeatEmb},
		EntLink: []string{FeatPop, FeatEmb},
		RelLink: []string{FeatNgram, FeatEmb},
	}
}

// ExtendedFeatures returns AllFeatures plus the two extension signals
// (f_attr for NP canonicalization, f_type for entity linking) — the
// "new signals" configuration quantified by the bench package's
// extension ablation.
func ExtendedFeatures() FeatureSet {
	f := AllFeatures()
	f.NPCanon = append(f.NPCanon, FeatAttr)
	f.EntLink = append(f.EntLink, FeatType)
	return f
}

// Config controls graph construction, learning, and inference.
type Config struct {
	Features FeatureSet

	// Task toggles: the Table 4 ablations. JOCLcano disables linking,
	// JOCLlink disables canonicalization; disabling Consistency alone
	// keeps both tasks but severs their interaction.
	EnableCanon       bool
	EnableLink        bool
	EnableConsistency bool
	EnableTransitive  bool
	EnableFactIncl    bool
	// EnableConflictRes applies the paper's Section 3.5 post-processing
	// that reconciles disagreeing canonicalization and linking outputs.
	EnableConflictRes bool
	// ConflictConfidence gates conflict resolution: only pairs whose
	// canonicalization marginal P(x=1) reaches this value may relabel a
	// link. Un-gated resolution amplifies canonicalization mistakes into
	// linking mistakes.
	ConflictConfidence float64
	// LinkAgreeMerge applies the paper's Assumption 1 at inference: a
	// blocked pair whose two phrases decode to the same non-NIL target
	// with link confidence >= LinkAgreeConfidence joins one
	// canonicalization group, even if its pair variable decoded to 0.
	// This flows linking evidence into grouping only — link assignments
	// are never touched — so it cannot harm linking accuracy.
	LinkAgreeMerge      bool
	LinkAgreeConfidence float64

	// MaxCandidates bounds each linking variable's state space (top-K
	// CKB candidates plus NIL).
	MaxCandidates int
	// BlockingThreshold is the IDF-overlap threshold for generating
	// canonicalization variables (paper: 0.5).
	BlockingThreshold float64
	// BlockSharedCandidates additionally generates canonicalization
	// variables for phrase pairs whose CKB candidate lists intersect,
	// even when their IDF overlap is below the threshold. Token-disjoint
	// paraphrases (abbreviations, aliases) have no canonicalization
	// variable under pure IDF blocking, so the consistency factors can
	// never merge them; candidate-sharing blocking is what lets the
	// linking task inform canonicalization — the paper's Assumption 1.
	BlockSharedCandidates bool
	// MaxPhrasesPerTarget caps how many phrases per shared candidate are
	// paired up, bounding the quadratic blow-up on very ambiguous
	// targets.
	MaxPhrasesPerTarget int
	// EmbBlockTopK additionally pairs each phrase with its K nearest
	// embedding neighbors (cosine >= EmbBlockMinSim), so distributional
	// paraphrases with no shared tokens or candidates still receive a
	// canonicalization variable. 0 disables. Embedding blocking is
	// skipped beyond EmbBlockMaxPhrases phrases (it is quadratic).
	EmbBlockTopK       int
	EmbBlockMinSim     float64
	EmbBlockMaxPhrases int
	// MaxTriangles caps the transitive-relation factors per phrase set,
	// bounding worst-case graph size on pathological blockings.
	MaxTriangles int

	// Heuristic factor scores (paper Section 3.1.5, 3.2.5, 3.3). The
	// consistency scores are applied through an evidence gate (see
	// core.addConsistencyFactors): the candidate-sharing blocking our
	// substrates need creates pair variables with little textual
	// evidence, and ungated full-strength coupling on those pairs lets
	// the two tasks amplify each other's errors.
	TransHigh, TransMid, TransLow float64 // U1–U3: 0.9 / 0.5 / 0.1
	FactHigh, FactLow             float64 // U4:    0.9 / 0.1
	ConsHigh, ConsLow             float64 // U5–U7: 0.7 / 0.3

	// InitialWeights seeds factor weights by registered name (e.g.
	// "alpha1.emb"), overriding the default of 1.0. This is how weights
	// learned on one data set's validation split transfer to another
	// data set, matching the paper's setup where ReVerb45K's validation
	// set trains the parameters used on NYTimes2018 as well.
	InitialWeights map[string]float64

	// Cache memoizes signal evaluations across repeated System
	// constructions over one resource epoch (streaming rebuilds). Leave
	// nil for one-shot batch runs; see core.SimCache.
	Cache *SimCache

	// Pool recycles BP message slabs across repeated inference runs
	// (streaming rebuilds): with a pool, a steady-state ingest's message
	// buffers are reused allocations, not fresh ones. Leave nil for
	// one-shot batch runs; see factorgraph.NewBufferPool.
	Pool *factorgraph.BufferPool

	// Segment controls hub-cut graph segmentation for the incremental
	// path (RunIncremental). Disabled, inference partitions the graph
	// into exact connected components; enabled, the highest-degree
	// variables — the popular-phrase hubs that fuse realistic graphs
	// into one giant component — are cut out of the blocks and handled
	// by frozen-boundary outer rounds, restoring per-block locality at
	// a bounded approximation cost.
	Segment SegmentConfig

	BP    factorgraph.RunOptions
	Train factorgraph.TrainOptions
}

// SegmentConfig tunes hub-cut segmentation; see factorgraph.
// PartitionOptions for the field semantics. Zero values take the
// partitioner's defaults.
type SegmentConfig struct {
	// Enable switches RunIncremental from exact connected components to
	// the hub-cut partition.
	Enable bool
	// HubDegreePercentile places the cut threshold on the degree
	// distribution (default 0.99); MinHubDegree is the absolute floor a
	// variable's degree must exceed to be cut (default 8).
	HubDegreePercentile float64
	MinHubDegree        int
	// MaxBlockVars size-caps the blocks by cutting the locally densest
	// variables of any block still larger (negative disables the
	// refinement stage). Left 0, the cap is auto-tuned from
	// TargetBlocksPerWorker (or defaults to 256 when that is also 0).
	MaxBlockVars int
	// TargetBlocksPerWorker auto-tunes MaxBlockVars when it is unset:
	// the cap is chosen so refinement yields roughly this many blocks
	// per inference worker (factorgraph.AutoTuneMaxBlockVars; default
	// 4 under DefaultConfig). Repaired partitions keep the cap they
	// were built under, so graph growth does not churn block
	// identities. 0 disables auto-tuning; an explicit MaxBlockVars
	// always wins.
	TargetBlocksPerWorker int
	// MaxOuterRounds bounds the block-run / boundary-refresh iterations
	// (default 4); BoundaryTolerance is the convergence threshold on
	// cut-variable belief change between rounds (default 0.005).
	MaxOuterRounds    int
	BoundaryTolerance float64
	// NoRepair rebuilds the hub-cut partition from scratch on every
	// build instead of repairing the previous build's cut set
	// (factorgraph.RepairPartition). Repair is the default: it skips
	// re-selection on unchanged blocks and preserves block identity, so
	// warm state and boundary baselines survive rebuilds. Disabling it
	// exists for A/B benchmarking (jocl-bench -exp repair).
	NoRepair bool
}

// DefaultConfig returns the full JOCL configuration with the paper's
// hyperparameters (blocking 0.5, learning rate 0.05, scores
// 0.9/0.5/0.1, 0.9/0.1, 0.7/0.3, convergence within 20 sweeps).
func DefaultConfig() Config {
	return Config{
		Features:              AllFeatures(),
		EnableCanon:           true,
		EnableLink:            true,
		EnableConsistency:     true,
		EnableTransitive:      true,
		EnableFactIncl:        true,
		EnableConflictRes:     true,
		MaxCandidates:         6,
		BlockingThreshold:     0.5,
		BlockSharedCandidates: true,
		MaxPhrasesPerTarget:   12,
		EmbBlockTopK:          0, // opt-in; see the blocking ablation
		EmbBlockMinSim:        0.45,
		EmbBlockMaxPhrases:    6000,
		LinkAgreeMerge:        true,
		LinkAgreeConfidence:   0.4,
		MaxTriangles:          20000,
		TransHigh:             0.9,
		TransMid:              0.5,
		TransLow:              0.1,
		FactHigh:              0.9,
		FactLow:               0.1,
		ConsHigh:              0.55,
		ConsLow:               0.45,
		ConflictConfidence:    0.9,
		Segment: SegmentConfig{
			TargetBlocksPerWorker: 4,
		},
		BP: factorgraph.RunOptions{
			MaxSweeps: 20,
			Tolerance: 1e-4,
		},
		Train: factorgraph.TrainOptions{
			LearnRate: 0.05,
			MaxIters:  20,
			BP: factorgraph.RunOptions{
				MaxSweeps: 10,
				Tolerance: 1e-3,
			},
		},
	}
}

// CanonOnlyConfig returns the JOCLcano ablation (Table 4).
func CanonOnlyConfig() Config {
	c := DefaultConfig()
	c.EnableLink = false
	c.EnableConsistency = false
	c.EnableFactIncl = false
	return c
}

// LinkOnlyConfig returns the JOCLlink ablation (Table 4).
func LinkOnlyConfig() Config {
	c := DefaultConfig()
	c.EnableCanon = false
	c.EnableConsistency = false
	c.EnableTransitive = false
	return c
}

// Labels carries the gold annotations of the validation split, the
// only supervision JOCL's learner consumes.
type Labels struct {
	NPLink    map[string]string // NP surface -> entity id ("" = NIL)
	RPLink    map[string]string // RP surface -> relation id
	NPCluster map[string]string // NP surface -> gold group id
	RPCluster map[string]string // RP surface -> gold group id
}

// Result is the joint output: canonicalization groups and CKB links
// for both phrase kinds, plus run diagnostics.
type Result struct {
	NPGroups [][]string
	RPGroups [][]string
	// NPGroupOf / RPGroupOf index each surface form into its
	// NPGroups/RPGroups entry — the O(1) membership lookup that lets
	// the read-path delta maintenance (internal/query) find a touched
	// phrase's group without scanning the whole grouping.
	NPGroupOf map[string]int
	RPGroupOf map[string]int
	NPLinks   map[string]string // surface -> entity id ("" = NIL)
	RPLinks   map[string]string // surface -> relation id ("" = NIL)

	// Delta describes which phrases' outputs may differ from the
	// previous build's. It is populated by RunIncremental only (nil
	// after a batch Run) and consumed by the read-path index maintenance
	// in internal/query.
	Delta *CanonDelta

	Stats Stats
}

// Stats reports the shape and effort of a run.
type Stats struct {
	NPPairVars    int
	RPPairVars    int
	NPLinkVars    int
	RPLinkVars    int
	Factors       int
	Sweeps        int
	TrainIters    int
	TrainGrad     float64
	ConflictFixes int
}
