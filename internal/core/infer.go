package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/factorgraph"
)

// labelStates translates gold labels into graph-variable clamps for the
// clamped learning pass. Only representable labels are used: a linking
// label whose target is outside the candidate list cannot be expressed
// and is skipped.
func (s *System) labelStates(labels *Labels) map[int]int {
	out := map[int]int{}
	if labels == nil {
		return out
	}
	if s.cfg.EnableCanon {
		pairLabels := func(pairs []pairRef, clusters map[string]string) {
			for _, pr := range pairs {
				ga, okA := clusters[pr.a]
				gb, okB := clusters[pr.b]
				if !okA || !okB {
					continue
				}
				if ga == gb {
					out[pr.v] = 1
				} else {
					out[pr.v] = 0
				}
			}
		}
		pairLabels(s.npPairRefs(), labels.NPCluster)
		pairLabels(s.rpPairRefs(), labels.RPCluster)
	}
	if s.cfg.EnableLink {
		linkLabels := func(phrases []string, linkVar []int, cands [][]string, links map[string]string) {
			for i, phrase := range phrases {
				gold, ok := links[phrase]
				if !ok {
					continue
				}
				if gold == "" {
					out[linkVar[i]] = 0
					continue
				}
				for ci, id := range cands[i] {
					if id == gold {
						out[linkVar[i]] = 1 + ci
						break
					}
				}
			}
		}
		linkLabels(s.nps, s.npLinkVar, s.npCands, labels.NPLink)
		linkLabels(s.rps, s.rpLinkVar, s.rpCands, labels.RPLink)
	}
	return out
}

type pairRef struct {
	a, b string
	v    int
}

func (s *System) npPairRefs() []pairRef {
	out := make([]pairRef, len(s.npPairs))
	for pi, p := range s.npPairs {
		out[pi] = pairRef{a: s.nps[p.I], b: s.nps[p.J], v: s.npPairVar[pi]}
	}
	return out
}

func (s *System) rpPairRefs() []pairRef {
	out := make([]pairRef, len(s.rpPairs))
	for pi, p := range s.rpPairs {
		out[pi] = pairRef{a: s.rps[p.I], b: s.rps[p.J], v: s.rpPairVar[pi]}
	}
	return out
}

// Run learns weights from the labels (when any are representable) and
// performs joint inference: scheduled LBP, max-marginal decoding,
// conflict resolution, and group formation.
//
// The labels serve twice, as in the paper's setup: they are the
// supervision for weight learning, and they stay clamped as evidence
// during the final inference pass, so known validation answers
// propagate through transitivity and consistency factors to the
// unlabeled test phrases (transductive inference).
func (s *System) Run(labels *Labels) *Result {
	return s.RunWithSchedule(labels, s.sched)
}

// RunWithSchedule is Run with an explicit message schedule; passing nil
// uses unscheduled flooding (the baseline the paper's Section 3.4
// working procedure improves upon — see the bench package's schedule
// ablation).
func (s *System) RunWithSchedule(labels *Labels, sched *factorgraph.Schedule) *Result {
	lab := s.labelStates(labels)
	if len(lab) > 0 {
		opt := s.cfg.Train
		opt.BP.Schedule = sched
		tr := factorgraph.Train(s.g, lab, opt)
		s.stats.TrainIters = tr.Iters
		s.stats.TrainGrad = tr.GradNorm
	}
	s.g.UnclampAll()
	for vid, state := range lab {
		s.g.Clamp(vid, state)
	}

	bp := factorgraph.NewBPWithPool(s.g, s.cfg.Pool)
	opt := s.cfg.BP
	opt.Schedule = sched
	bp.Run(opt)
	s.stats.Sweeps = bp.Sweeps()
	res := s.finish(bp)
	bp.Release()
	s.g.UnclampAll()
	return res
}

// finish turns a BP's converged message state into the joint Result:
// max-marginal decoding, conflict resolution, link-agreement merging,
// and group formation. It is shared by the batch path (RunWithSchedule)
// and the incremental path (RunIncremental), which differ only in how
// the messages were obtained.
func (s *System) finish(bp *factorgraph.BP) *Result {
	decoded := bp.Decode()
	s.reassignedNPs, s.reassignedRPs = nil, nil

	res := &Result{
		NPLinks: map[string]string{},
		RPLinks: map[string]string{},
	}

	if s.cfg.EnableLink {
		for i, np := range s.nps {
			res.NPLinks[np] = s.stateToID(decoded[s.npLinkVar[i]], s.npCands[i])
		}
		for i, rp := range s.rps {
			res.RPLinks[rp] = s.stateToID(decoded[s.rpLinkVar[i]], s.rpCands[i])
		}
	}

	var npPos, rpPos [][2]int
	var npConf, rpConf [][2]int // confident positives for conflict resolution
	if s.cfg.EnableCanon {
		for pi, p := range s.npPairs {
			if decoded[s.npPairVar[pi]] == 1 {
				npPos = append(npPos, [2]int{p.I, p.J})
				if bp.VarBelief(s.npPairVar[pi])[1] >= s.cfg.ConflictConfidence {
					npConf = append(npConf, [2]int{p.I, p.J})
				}
			}
		}
		for pi, p := range s.rpPairs {
			if decoded[s.rpPairVar[pi]] == 1 {
				rpPos = append(rpPos, [2]int{p.I, p.J})
				if bp.VarBelief(s.rpPairVar[pi])[1] >= s.cfg.ConflictConfidence {
					rpConf = append(rpConf, [2]int{p.I, p.J})
				}
			}
		}
		if s.cfg.EnableLink {
			npLinkConf := s.linkConfidence(bp, s.nps, s.npLinkVar)
			rpLinkConf := s.linkConfidence(bp, s.rps, s.rpLinkVar)
			if s.cfg.EnableConflictRes {
				npFixes, npMoved := resolveConflicts(s.nps, npConf, res.NPLinks, npLinkConf)
				rpFixes, rpMoved := resolveConflicts(s.rps, rpConf, res.RPLinks, rpLinkConf)
				s.stats.ConflictFixes = npFixes + rpFixes
				s.reassignedNPs, s.reassignedRPs = npMoved, rpMoved
			}
			if s.cfg.LinkAgreeMerge {
				npPos = append(npPos, linkAgreementPairs(s.nps, res.NPLinks, npLinkConf, s.cfg.LinkAgreeConfidence)...)
				// Relation linking is much less accurate than entity
				// linking (the paper's Figure 3 observation), so
				// link-agreement merging for RPs demands near-certain
				// marginals; at the NP threshold it would inject the
				// linker's error rate straight into the RP groups.
				rpThreshold := s.cfg.LinkAgreeConfidence + 0.5
				if rpThreshold > 0.95 {
					rpThreshold = 0.95
				}
				rpPos = append(rpPos, linkAgreementPairs(s.rps, res.RPLinks, rpLinkConf, rpThreshold)...)
			}
		}
		res.NPGroups = groupsOf(s.nps, npPos)
		res.RPGroups = groupsOf(s.rps, rpPos)
	} else if s.cfg.EnableLink {
		// Linking-only mode still reports groups: phrases linked to the
		// same target form a group (the Wikidata-Integrator-style view).
		res.NPGroups = groupsByLink(s.nps, res.NPLinks)
		res.RPGroups = groupsByLink(s.rps, res.RPLinks)
	}
	res.NPGroupOf = groupIndex(res.NPGroups)
	res.RPGroupOf = groupIndex(res.RPGroups)

	res.Stats = s.stats
	return res
}

// groupIndex inverts a grouping into its membership lookup.
func groupIndex(groups [][]string) map[string]int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make(map[string]int, n)
	for gi, g := range groups {
		for _, m := range g {
			out[m] = gi
		}
	}
	return out
}

// linkAgreementPairs implements Assumption 1 at inference: all phrases
// linking to the same non-NIL target with confidence above the
// threshold belong to one canonicalization group. Each link group is
// chained through its first member, yielding len-1 pairs per group.
func linkAgreementPairs(phrases []string, links map[string]string, conf map[string]float64, threshold float64) [][2]int {
	first := map[string]int{}
	var out [][2]int
	for i, p := range phrases {
		target := links[p]
		if target == "" || conf[p] < threshold {
			continue
		}
		if j, ok := first[target]; ok {
			out = append(out, [2]int{j, i})
		} else {
			first[target] = i
		}
	}
	return out
}

// linkConfidence returns each phrase's max link-marginal probability.
func (s *System) linkConfidence(bp *factorgraph.BP, phrases []string, linkVar []int) map[string]float64 {
	out := make(map[string]float64, len(phrases))
	for i, p := range phrases {
		best := 0.0
		for _, v := range bp.VarBelief(linkVar[i]) {
			if v > best {
				best = v
			}
		}
		out[p] = best
	}
	return out
}

func (s *System) stateToID(state int, cands []string) string {
	if state <= 0 || state > len(cands) {
		return ""
	}
	return cands[state-1]
}

// resolveConflicts implements the paper's Section 3.5 post-processing:
// when a positive canonicalization pair spans two different linking
// groups, both phrases adopt one group's label. The paper breaks the
// tie by group size; we refine the rule with the evidence the factor
// graph already provides — the phrase whose link marginal is more
// confident wins, with group size as the tiebreak — because a popular
// entity's group being larger says nothing about which of the two
// links is right. NIL never wins: it is the absence of a linking
// group, so a NIL-linked phrase adopts its partner's entity.
// It mutates links in place and returns the number of reassignments
// plus the relabeled phrases (duplicates possible when a phrase loses
// twice) — the read-path delta needs to know which links moved beyond
// what their variables decoded to.
func resolveConflicts(phrases []string, positive [][2]int, links map[string]string, conf map[string]float64) (int, []string) {
	groupSize := map[string]int{}
	for _, phrase := range phrases {
		groupSize[links[phrase]]++
	}
	fixes := 0
	var moved []string
	// Deterministic order: positive pairs are already in blocked order.
	for _, p := range positive {
		a, b := phrases[p[0]], phrases[p[1]]
		la, lb := links[a], links[b]
		if la == lb {
			continue
		}
		winner, loserPhrase := la, b
		bWins := false
		switch {
		case la == "":
			bWins = true
		case lb == "":
			bWins = false
		case conf[b] > conf[a]:
			bWins = true
		case conf[b] == conf[a]:
			bWins = groupSize[lb] > groupSize[la] ||
				(groupSize[lb] == groupSize[la] && lb < la)
		}
		if bWins {
			winner, loserPhrase = lb, a
		}
		old := links[loserPhrase]
		links[loserPhrase] = winner
		groupSize[old]--
		groupSize[winner]++
		fixes++
		moved = append(moved, loserPhrase)
	}
	return fixes, moved
}

// groupsOf forms canonicalization groups as connected components over
// positive pair decisions; unpaired phrases become singletons.
func groupsOf(phrases []string, positive [][2]int) [][]string {
	uf := cluster.NewUnionFind(len(phrases))
	for _, p := range positive {
		uf.Union(p[0], p[1])
	}
	var groups [][]string
	for _, idxs := range uf.Groups() {
		g := make([]string, len(idxs))
		for k, i := range idxs {
			g[k] = phrases[i]
		}
		groups = append(groups, g)
	}
	return groups
}

// groupsByLink groups phrases by their linked target; NIL-linked
// phrases stay singletons (they denote unknown, possibly distinct,
// entities).
func groupsByLink(phrases []string, links map[string]string) [][]string {
	byTarget := map[string][]string{}
	var order []string
	for _, p := range phrases {
		t := links[p]
		if t == "" {
			continue
		}
		if _, seen := byTarget[t]; !seen {
			order = append(order, t)
		}
		byTarget[t] = append(byTarget[t], p)
	}
	sort.Strings(order)
	var groups [][]string
	for _, t := range order {
		groups = append(groups, byTarget[t])
	}
	for _, p := range phrases {
		if links[p] == "" {
			groups = append(groups, []string{p})
		}
	}
	return groups
}
