package core

import (
	"sync"
	"time"

	"repro/internal/factorgraph"
)

// This file holds the incremental-construction and incremental-
// inference hooks the streaming subsystem (internal/stream) builds on.
// A streaming session rebuilds the System after every ingested batch —
// variable ids shift as phrases are inserted into the sorted lists —
// but between epoch refreshes the signal resources are pinned
// (signals.Resources.Extend, okb frozen IDF), so:
//
//   - construction can reuse cached signal evaluations (SimCache): the
//     expensive part of NewSystem is re-evaluating the same feature
//     functions over the same phrase pairs, batch after batch;
//   - inference can reuse message state (factorgraph.WarmState): a
//     connected component whose variables sit in bit-identical
//     neighborhoods (same factor names, potentials, cardinalities) has
//     the same BP fixed point, so its transplanted messages already ARE
//     the answer and only components the batch touched need sweeps.

// simKey identifies one memoized signal evaluation. Phrase and
// candidate identities are okb symbol ids, not surfaces: the key is a
// small value type (no per-lookup string building or hashing of long
// surfaces), and two builds of the same epoch hit the same entries
// however the phrase lists shifted. kind separates the feature
// families sharing a feat name ('N'/'R' canonicalization, 'E' entity
// linking, 'L' relation linking); feat strings are package-level
// constants, so comparing them is cheap.
type simKey struct {
	kind byte
	feat string
	a, b int32
}

// SimCache memoizes signal evaluations across System constructions of
// one resource epoch. It must be dropped whenever the underlying
// resources change (the stream session does this on epoch refresh).
type SimCache struct {
	mu sync.Mutex
	m  map[simKey]float64
}

// NewSimCache returns an empty construction cache.
func NewSimCache() *SimCache {
	return &SimCache{m: make(map[simKey]float64)}
}

// Len reports the number of memoized evaluations.
func (c *SimCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *SimCache) get(key simKey) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *SimCache) put(key simKey, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// entLinkSim evaluates one entity-linking feature, through the cache
// when configured. npSym and eidSym are the phrase's and candidate's
// symbol ids (candidate ids are interned into the same table).
func (s *System) entLinkSim(feat, np, eid string, npSym, eidSym int32) float64 {
	if c := s.cfg.Cache; c != nil {
		key := simKey{kind: 'E', feat: feat, a: npSym, b: eidSym}
		if v, ok := c.get(key); ok {
			return v
		}
		v := s.entLinkSimUncached(feat, np, eid)
		c.put(key, v)
		return v
	}
	return s.entLinkSimUncached(feat, np, eid)
}

func (s *System) entLinkSimUncached(feat, np, eid string) float64 {
	switch feat {
	case FeatPop:
		return s.res.Pop(np, eid)
	case FeatEmb:
		return s.res.EntEmb(np, eid)
	case FeatPPDB:
		return s.res.EntPPDB(np, eid)
	case FeatType:
		return s.res.TypeCompat(np, eid)
	}
	panic("core: unknown entity-linking feature " + feat)
}

// relLinkSim evaluates one relation-linking feature, through the cache
// when configured.
func (s *System) relLinkSim(feat, rp, rid string, rpSym, ridSym int32) float64 {
	if c := s.cfg.Cache; c != nil {
		key := simKey{kind: 'L', feat: feat, a: rpSym, b: ridSym}
		if v, ok := c.get(key); ok {
			return v
		}
		v := s.relLinkSimUncached(feat, rp, rid)
		c.put(key, v)
		return v
	}
	return s.relLinkSimUncached(feat, rp, rid)
}

func (s *System) relLinkSimUncached(feat, rp, rid string) float64 {
	switch feat {
	case FeatNgram:
		return s.res.RelNgram(rp, rid)
	case FeatLD:
		return s.res.RelLD(rp, rid)
	case FeatEmb:
		return s.res.RelEmb(rp, rid)
	case FeatPPDB:
		return s.res.RelPPDB(rp, rid)
	}
	panic("core: unknown relation-linking feature " + feat)
}

// IncrementalStats describes one incremental inference pass.
type IncrementalStats struct {
	Components int // partition blocks in this build's graph
	Dirty      int // blocks that needed BP sweeps
	Reused     int // blocks served from warm-started messages
	DirtyVars  int // variables inside dirty blocks
	TotalVars  int
	// WarmFactors counts factors whose messages transplanted from the
	// previous build (spanning both clean blocks and the unchanged
	// fringes of dirty ones).
	WarmFactors int
	SweepsTotal int // sweeps summed over all block runs
	SweepsMax   int // slowest block run
	// CutVars counts hub variables cut out of the blocks, OuterRounds
	// the frozen-boundary rounds, and BoundaryResidual the final
	// refresh's max cut-belief change — all zero unless the partition
	// carries cuts (Config.Segment.Enable with qualifying hubs).
	// BlocksRun totals block executions (= Dirty without cuts; larger
	// when boundary movement forced outer-round re-runs).
	CutVars          int
	OuterRounds      int
	BlocksRun        int
	BoundaryResidual float64
	// PartitionTime is the wall-clock cost of deriving this build's
	// partition, BPTime the scoped message passing (all outer rounds),
	// and DeltaTime the decode + canonicalization-delta derivation.
	// PartitionRepaired marks builds that repaired the previous build's
	// partition (factorgraph.RepairPartition) instead of re-deriving it;
	// RepairBlocksReused / RepairBlocksRecut then split the pre-repair
	// blocks into adopted-verbatim and re-cut.
	PartitionTime      time.Duration
	BPTime             time.Duration
	DeltaTime          time.Duration
	PartitionRepaired  bool
	RepairBlocksReused int
	RepairBlocksRecut  int
}

// partition decomposes the system's graph per the segmentation config:
// exact connected components by default, hub-cut blocks when enabled.
// With segmentation on, an unset MaxBlockVars is auto-tuned toward
// Segment.TargetBlocksPerWorker blocks per worker, and a previous
// build's PartitionMemory (riding in the warm state) is repaired
// instead of re-derived unless Segment.NoRepair. The returned tuned cap
// is 0 when no auto-tuning applied.
func (s *System) partition(workers int, mem *factorgraph.PartitionMemory) (*factorgraph.Partition, factorgraph.RepairStats, int) {
	seg := s.cfg.Segment
	if !seg.Enable {
		return factorgraph.NewComponentPartition(s.g), factorgraph.RepairStats{}, 0
	}
	opt := factorgraph.PartitionOptions{
		HubDegreePercentile: seg.HubDegreePercentile,
		MinHubDegree:        seg.MinHubDegree,
		MaxBlockVars:        seg.MaxBlockVars,
		MaxOuterRounds:      seg.MaxOuterRounds,
		BoundaryTolerance:   seg.BoundaryTolerance,
	}
	tuned := 0
	if seg.MaxBlockVars == 0 && seg.TargetBlocksPerWorker > 0 {
		// A repaired partition keeps the cap its blocks were refined
		// under: re-tuning per build would dirty every block whose size
		// straddles the moving cap, churning the identities repair
		// exists to preserve. Fresh builds (cold start, epoch refresh)
		// re-tune from the current graph size.
		if mem != nil && mem.TunedBlockVars > 0 {
			tuned = mem.TunedBlockVars
		} else {
			tuned = factorgraph.AutoTuneMaxBlockVars(s.g.NumVariables(), workers, seg.TargetBlocksPerWorker)
		}
		opt.MaxBlockVars = tuned
	}
	if mem != nil && !seg.NoRepair {
		p, rs := factorgraph.RepairPartition(s.g, mem, opt)
		return p, rs, tuned
	}
	return factorgraph.NewHubCutPartition(s.g, opt), factorgraph.RepairStats{}, tuned
}

// RunIncremental performs joint inference re-running belief propagation
// only on the partition blocks that changed since the previous build.
// A block is clean when every variable's neighborhood fingerprint
// (factor names, cardinalities, and potential tables — see
// factorgraph.VarAdjacency) matches the warm state AND, for blocks
// bordering cut variables, the imported cut-variable beliefs stay
// within the boundary tolerance of the beliefs the block last ran
// against — a hub gaining factors elsewhere does not dirty the blocks
// behind it, which is what segmentation buys. Clean blocks'
// transplanted messages already encode their converged beliefs and are
// served as-is; dirty blocks warm-start from whatever messages still
// match and run scoped BP on a bounded worker pool, with frozen-
// boundary outer rounds when the partition carries cuts. Passing a nil
// warm state marks everything dirty (a cold run).
//
// Under segmentation the partition itself is persistent: the previous
// build's cut set and block profiles ride in the warm state
// (WarmState.Partition) and are repaired — selection re-runs only
// inside blocks that actually changed — rather than re-derived, so
// block identities, boundary baselines, and warm messages survive
// rebuilds (Segment.NoRepair restores per-build re-derivation).
//
// The incremental path is unsupervised by design: weight learning needs
// global clamped/free passes, so serving sessions learn weights offline
// and seed them via Config.InitialWeights. The returned WarmState feeds
// the next call.
func (s *System) RunIncremental(warm *factorgraph.WarmState, workers int) (*Result, *factorgraph.WarmState, IncrementalStats) {
	s.g.UnclampAll()
	bp := factorgraph.NewBPWithPool(s.g, s.cfg.Pool)
	defer bp.Release()
	sigs := s.g.Signatures()
	curAdj := factorgraph.VarAdjacency(s.g, sigs)

	st := IncrementalStats{TotalVars: s.g.NumVariables()}
	if warm != nil {
		st.WarmFactors = bp.Import(warm, sigs)
	}

	var mem *factorgraph.PartitionMemory
	if warm != nil {
		mem = warm.Partition
	}
	t0 := time.Now()
	part, repair, tuned := s.partition(workers, mem)
	st.PartitionTime = time.Since(t0)
	st.PartitionRepaired = repair.Repaired
	st.RepairBlocksReused = repair.BlocksReused
	st.RepairBlocksRecut = repair.BlocksRecut
	st.Components = len(part.Blocks)
	st.CutVars = len(part.Cut)
	// Boundary beliefs as imported: a block bordering cut variables may
	// be served warm only while these stay within the boundary tolerance
	// of the beliefs the block last ran against (warm.Boundary). The
	// baseline moves only when the block re-runs, so sub-tolerance hub
	// drift cannot accumulate unboundedly across ingests, while a hub
	// merely gaining factors elsewhere dirties nothing — the point of
	// cutting through hubs.
	var curBoundary map[int32]map[int32][]float64
	if warm != nil && len(part.Cut) > 0 {
		curBoundary = part.BoundaryBeliefs(bp)
	}
	// Per-block fingerprints over the adjacency strings: one comparison
	// clears an unchanged block, however the partition object came to be
	// — in particular, a no-op repair (same blocks, new Partition value)
	// keeps every block warm. Computed once and reused for the export.
	curFP := part.BlockFingerprints(curAdj)
	// Non-nil even when empty: for RunPartition nil means "everything",
	// the empty slice means "nothing to do".
	dirty := make([]int, 0, len(part.Blocks))
	for ci, block := range part.Blocks {
		clean := warm != nil
		if clean {
			key := part.BlockKey(ci)
			if fp, ok := warm.BlockFP[key]; !ok || fp != curFP[key] {
				// No fingerprint to compare (pre-fingerprint warm state,
				// or reshaped block): fall back to walking the members.
				for _, vid := range block {
					sym := s.g.Variable(vid).Sym
					if prev, ok := warm.VarAdj[sym]; !ok || prev != curAdj[sym] {
						clean = false
						break
					}
				}
			}
			if clean && len(part.Boundary[ci]) > 0 {
				prev, ok := warm.Boundary[key]
				clean = ok && part.WithinBoundaryTolerance(prev, curBoundary[key])
			}
		}
		if clean {
			continue
		}
		dirty = append(dirty, ci)
	}

	// Pre-run cut snapshots for the canonicalization delta (canonDelta):
	// a cut variable whose factor neighborhood transplanted verbatim
	// (fingerprint match — its imported belief IS the previous build's)
	// and whose belief the run left bit-identical has bit-identical
	// decode and marginal, so its phrase's outputs cannot have moved.
	// Without this, every hub phrase would count as touched on every
	// ingest and the read-path delta would balloon to the cut set's
	// clusters.
	var cutBefore [][]float64
	var cutChanged []bool
	if warm != nil && len(part.Cut) > 0 {
		cutBefore = make([][]float64, len(part.Cut))
		cutChanged = make([]bool, len(part.Cut))
		for i, vid := range part.Cut {
			cutBefore[i] = bp.VarBelief(vid)
			sym := s.g.Variable(vid).Sym
			prev, ok := warm.VarAdj[sym]
			cutChanged[i] = !ok || prev != curAdj[sym]
		}
	}

	opt := s.cfg.BP
	opt.Schedule = s.sched
	pr := factorgraph.RunPartition(bp, part, opt, workers, dirty)
	st.BPTime = pr.Elapsed
	st.SweepsTotal = pr.SweepsTotal
	st.SweepsMax = pr.SweepsMax
	st.BlocksRun = pr.BlocksRun
	if st.CutVars > 0 {
		st.OuterRounds = pr.OuterRounds
		st.BoundaryResidual = pr.BoundaryResidual
	}
	// Count dirtiness from what actually ran: the frozen-boundary outer
	// loop may pull in blocks the fingerprints had cleared (their hub
	// moved), and those must not be reported as served warm.
	for ci, run := range pr.Blocks {
		if run.Sweeps > 0 {
			st.Dirty++
			st.DirtyVars += len(part.Blocks[ci])
		}
	}
	st.Reused = st.Components - st.Dirty

	s.stats.Sweeps = st.SweepsMax
	tDelta := time.Now()
	res := s.finish(bp)
	res.Delta = s.canonDelta(part, pr, bp, cutBefore, cutChanged, warm == nil)
	st.DeltaTime = time.Since(tDelta)
	// Export the next build's warm state, carrying clean factors'
	// messages over from the previous state by reference: a factor is
	// provably untouched when its messages transplanted verbatim
	// (Imported), its block never swept this run, and — if any boundary
	// refresh ran — it neither is a cut factor nor touches a cut
	// variable (the refresh rewrites cut factors' outgoing messages and
	// cut variables' messages into every adjacent factor). With a steady
	// stream this makes the export's copy cost O(dirty), not O(graph).
	var cleanF []bool
	if warm != nil {
		refreshRan := len(part.Cut) > 0 && pr.BlocksRun > 0
		cleanF = make([]bool, s.g.NumFactors())
		for fid := range cleanF {
			if !bp.Imported(fid) {
				continue
			}
			ci := part.FactorBlock(fid)
			if ci < 0 || pr.Blocks[ci].Sweeps > 0 {
				continue
			}
			if refreshRan {
				cutAdjacent := false
				for _, vid := range s.g.Factor(fid).Vars {
					if part.BlockOf[vid] < 0 {
						cutAdjacent = true
						break
					}
				}
				if cutAdjacent {
					continue
				}
			}
			cleanF[fid] = true
		}
	}
	out := bp.ExportReusing(sigs, curAdj, warm, cleanF)
	out.BlockFP = curFP
	if s.cfg.Segment.Enable {
		// Persist the partition's identity so the next build repairs it
		// instead of re-deriving it, under the same auto-tuned cap.
		pm := part.Memory()
		pm.TunedBlockVars = tuned
		out.Partition = pm
	}
	if len(part.Cut) > 0 {
		// Record each block's ran-against baseline: fresh beliefs for
		// blocks that ran, the imported baseline carried forward for
		// blocks served warm (re-baselining those every ingest would let
		// sub-tolerance drift compound unnoticed). Blocks bordering cut
		// variables that were still moving when the outer-round budget
		// ran out get no baseline at all, forcing a re-run on the next
		// build instead of freezing the beyond-tolerance error in.
		final := part.BoundaryBeliefs(bp)
		out.Boundary = make(map[int32]map[int32][]float64, len(final))
		for ci := range part.Blocks {
			if len(part.Boundary[ci]) == 0 {
				continue
			}
			key := part.BlockKey(ci)
			if pr.Blocks[ci].Sweeps > 0 || warm == nil {
				out.Boundary[key] = final[key]
			} else if prev, ok := warm.Boundary[key]; ok {
				out.Boundary[key] = prev
			}
		}
		for _, ci := range part.BlocksBordering(pr.Unsettled) {
			delete(out.Boundary, part.BlockKey(ci))
		}
	}
	return res, out, st
}
