package core

import (
	"strings"
	"sync"

	"repro/internal/factorgraph"
)

// This file holds the incremental-construction and incremental-
// inference hooks the streaming subsystem (internal/stream) builds on.
// A streaming session rebuilds the System after every ingested batch —
// variable ids shift as phrases are inserted into the sorted lists —
// but between epoch refreshes the signal resources are pinned
// (signals.Resources.Extend, okb frozen IDF), so:
//
//   - construction can reuse cached signal evaluations (SimCache): the
//     expensive part of NewSystem is re-evaluating the same feature
//     functions over the same phrase pairs, batch after batch;
//   - inference can reuse message state (factorgraph.WarmState): a
//     connected component whose variables sit in bit-identical
//     neighborhoods (same factor names, potentials, cardinalities) has
//     the same BP fixed point, so its transplanted messages already ARE
//     the answer and only components the batch touched need sweeps.

// SimCache memoizes signal evaluations across System constructions of
// one resource epoch. It must be dropped whenever the underlying
// resources change (the stream session does this on epoch refresh).
type SimCache struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewSimCache returns an empty construction cache.
func NewSimCache() *SimCache {
	return &SimCache{m: make(map[string]float64)}
}

// Len reports the number of memoized evaluations.
func (c *SimCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func simKey(kind byte, feat, a, b string) string {
	var sb strings.Builder
	sb.Grow(len(feat) + len(a) + len(b) + 4)
	sb.WriteByte(kind)
	sb.WriteString(feat)
	sb.WriteByte(0)
	sb.WriteString(a)
	sb.WriteByte(0)
	sb.WriteString(b)
	return sb.String()
}

func (c *SimCache) get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *SimCache) put(key string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// entLinkSim evaluates one entity-linking feature, through the cache
// when configured.
func (s *System) entLinkSim(feat, np, eid string) float64 {
	if c := s.cfg.Cache; c != nil {
		key := simKey('E', feat, np, eid)
		if v, ok := c.get(key); ok {
			return v
		}
		v := s.entLinkSimUncached(feat, np, eid)
		c.put(key, v)
		return v
	}
	return s.entLinkSimUncached(feat, np, eid)
}

func (s *System) entLinkSimUncached(feat, np, eid string) float64 {
	switch feat {
	case FeatPop:
		return s.res.Pop(np, eid)
	case FeatEmb:
		return s.res.EntEmb(np, eid)
	case FeatPPDB:
		return s.res.EntPPDB(np, eid)
	case FeatType:
		return s.res.TypeCompat(np, eid)
	}
	panic("core: unknown entity-linking feature " + feat)
}

// relLinkSim evaluates one relation-linking feature, through the cache
// when configured.
func (s *System) relLinkSim(feat, rp, rid string) float64 {
	if c := s.cfg.Cache; c != nil {
		key := simKey('L', feat, rp, rid)
		if v, ok := c.get(key); ok {
			return v
		}
		v := s.relLinkSimUncached(feat, rp, rid)
		c.put(key, v)
		return v
	}
	return s.relLinkSimUncached(feat, rp, rid)
}

func (s *System) relLinkSimUncached(feat, rp, rid string) float64 {
	switch feat {
	case FeatNgram:
		return s.res.RelNgram(rp, rid)
	case FeatLD:
		return s.res.RelLD(rp, rid)
	case FeatEmb:
		return s.res.RelEmb(rp, rid)
	case FeatPPDB:
		return s.res.RelPPDB(rp, rid)
	}
	panic("core: unknown relation-linking feature " + feat)
}

// IncrementalStats describes one incremental inference pass.
type IncrementalStats struct {
	Components int // connected components in this build's graph
	Dirty      int // components that needed BP sweeps
	Reused     int // components served from warm-started messages
	DirtyVars  int // variables inside dirty components
	TotalVars  int
	// WarmFactors counts factors whose messages transplanted from the
	// previous build (spanning both clean components and the unchanged
	// fringes of dirty ones).
	WarmFactors int
	SweepsTotal int // sweeps summed over dirty components
	SweepsMax   int // slowest dirty component
}

// RunIncremental performs joint inference re-running belief propagation
// only on the connected components that changed since the previous
// build, identified by comparing every variable's neighborhood
// fingerprint (factor names, cardinalities, and potential tables —
// see factorgraph.VarAdjacency) against the warm state. Unchanged
// components' transplanted messages already encode their converged
// beliefs and are served as-is; changed components warm-start from
// whatever messages still match and run scoped BP on a bounded worker
// pool. Passing a nil warm state marks everything dirty (a cold run).
//
// The incremental path is unsupervised by design: weight learning needs
// global clamped/free passes, so serving sessions learn weights offline
// and seed them via Config.InitialWeights. The returned WarmState feeds
// the next call.
func (s *System) RunIncremental(warm *factorgraph.WarmState, workers int) (*Result, *factorgraph.WarmState, IncrementalStats) {
	s.g.UnclampAll()
	bp := factorgraph.NewBP(s.g)
	sigs := s.g.Signatures()
	curAdj := factorgraph.VarAdjacency(s.g, sigs)

	st := IncrementalStats{TotalVars: s.g.NumVariables()}
	if warm != nil {
		st.WarmFactors = bp.Import(warm, sigs)
	}

	idx := factorgraph.NewComponentIndex(s.g)
	st.Components = len(idx.Comps)
	var dirty []int
	for ci, comp := range idx.Comps {
		clean := warm != nil
		if clean {
			for _, vid := range comp {
				name := s.g.Variable(vid).Name
				if prev, ok := warm.VarAdj[name]; !ok || prev != curAdj[name] {
					clean = false
					break
				}
			}
		}
		if clean {
			st.Reused++
			continue
		}
		dirty = append(dirty, ci)
		st.DirtyVars += len(comp)
	}
	st.Dirty = len(dirty)

	opt := s.cfg.BP
	opt.Schedule = s.sched
	runs := factorgraph.RunComponents(bp, idx, opt, workers, dirty)
	for _, ci := range dirty {
		st.SweepsTotal += runs[ci].Sweeps
		if runs[ci].Sweeps > st.SweepsMax {
			st.SweepsMax = runs[ci].Sweeps
		}
	}

	s.stats.Sweeps = st.SweepsMax
	res := s.finish(bp)
	out := bp.Export(sigs)
	return res, out, st
}
