package core

import (
	"reflect"
	"testing"

	"repro/internal/datasets"
	"repro/internal/factorgraph"
	"repro/internal/signals"
)

func incResources(t *testing.T) *signals.Resources {
	t.Helper()
	ds, err := datasets.Generate(datasets.ReVerb45K(0.01))
	if err != nil {
		t.Fatal(err)
	}
	return signals.New(ds.OKB, ds.CKB, ds.Emb, ds.PPDB)
}

// fixedSweepConfig pins the sweep count: with an unreachable tolerance,
// the whole-graph serial run and every per-component scoped run perform
// exactly MaxSweeps sweeps, so their messages must agree bit for bit
// (one BP sweep is component-local and order-independent).
func fixedSweepConfig() Config {
	cfg := DefaultConfig()
	cfg.BP.MaxSweeps = 6
	cfg.BP.Tolerance = 1e-300
	return cfg
}

func sameOutputs(t *testing.T, a, b *Result, context string) {
	t.Helper()
	if !reflect.DeepEqual(a.NPGroups, b.NPGroups) {
		t.Errorf("%s: NPGroups differ", context)
	}
	if !reflect.DeepEqual(a.RPGroups, b.RPGroups) {
		t.Errorf("%s: RPGroups differ", context)
	}
	if !reflect.DeepEqual(a.NPLinks, b.NPLinks) {
		t.Errorf("%s: NPLinks differ", context)
	}
	if !reflect.DeepEqual(a.RPLinks, b.RPLinks) {
		t.Errorf("%s: RPLinks differ", context)
	}
}

func TestRunIncrementalColdMatchesSerialRun(t *testing.T) {
	res := incResources(t)
	cfg := fixedSweepConfig()

	serialSys, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := serialSys.Run(nil)

	incSys, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, _, st := incSys.RunIncremental(nil, 8)
	if st.Dirty != st.Components || st.Reused != 0 {
		t.Fatalf("cold run must mark every component dirty: %+v", st)
	}
	sameOutputs(t, serial, inc, "cold incremental vs serial")
}

func TestRunIncrementalParallelismInvariant(t *testing.T) {
	res := incResources(t)
	cfg := fixedSweepConfig()
	cfg.BP.Tolerance = 1e-8 // realistic convergence; worker count still must not matter
	cfg.BP.MaxSweeps = 20

	one, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rOne, _, _ := one.RunIncremental(nil, 1)

	many, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rMany, _, _ := many.RunIncremental(nil, 8)
	sameOutputs(t, rOne, rMany, "workers=1 vs workers=8")
}

func TestRunIncrementalWarmRerunIsAllClean(t *testing.T) {
	res := incResources(t)
	cfg := DefaultConfig()
	cfg.Cache = NewSimCache()

	first, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, warm, st1 := first.RunIncremental(nil, 4)
	if st1.Dirty == 0 {
		t.Fatalf("first run should have dirty components")
	}

	// Same resources, fresh construction: every component's neighborhood
	// fingerprint matches, so nothing re-runs and the output is served
	// verbatim from the transplanted messages.
	second, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, st2 := second.RunIncremental(warm, 4)
	if st2.Dirty != 0 || st2.Reused != st2.Components || st2.SweepsTotal != 0 {
		t.Fatalf("rebuild on unchanged input must reuse everything: %+v", st2)
	}
	sameOutputs(t, r1, r2, "warm rerun")
}

func TestSegmentationWithoutQualifyingHubsMatchesSerialBitwise(t *testing.T) {
	res := incResources(t)
	cfg := fixedSweepConfig()
	cfg.Segment.Enable = true
	// No variable can exceed this floor, so the hub-cut partition must
	// degenerate to exact components and reproduce the serial run.
	cfg.Segment.MinHubDegree = 1 << 30
	cfg.Segment.MaxBlockVars = -1

	serialSys, err := NewSystem(res, fixedSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial := serialSys.Run(nil)

	segSys, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg, _, st := segSys.RunIncremental(nil, 4)
	if st.CutVars != 0 {
		t.Fatalf("degenerate segmentation cut %d variables", st.CutVars)
	}
	sameOutputs(t, serial, seg, "degenerate segmentation vs serial")
}

func TestSegmentedWarmRerunIsAllClean(t *testing.T) {
	res := incResources(t)
	cfg := DefaultConfig()
	cfg.Cache = NewSimCache()
	cfg.Segment.Enable = true
	// Give the frozen-boundary loop room to actually settle: a run that
	// exhausts its outer rounds mid-movement deliberately withholds the
	// unsettled blocks' baselines so the next build repairs them, which
	// would make this test's all-clean assertion fail by design.
	cfg.Segment.MaxOuterRounds = 16
	cfg.Segment.BoundaryTolerance = 0.005

	first, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, warm, st1 := first.RunIncremental(nil, 4)
	if st1.CutVars == 0 {
		t.Fatalf("hub-heavy resources should produce cut variables: %+v", st1)
	}
	if st1.Components < 2 {
		t.Fatalf("segmentation left the graph in %d block(s)", st1.Components)
	}
	if st1.BoundaryResidual > cfg.Segment.BoundaryTolerance && st1.BoundaryResidual != 0 {
		t.Fatalf("first run's boundary did not settle (residual %g): raise MaxOuterRounds", st1.BoundaryResidual)
	}

	// Identical rebuild: every block's fingerprints and boundary baselines
	// match, so nothing re-runs and the output is served verbatim.
	second, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, st2 := second.RunIncremental(warm, 4)
	if st2.Dirty != 0 || st2.Reused != st2.Components || st2.SweepsTotal != 0 {
		t.Fatalf("segmented rebuild on unchanged input must reuse everything: %+v", st2)
	}
	sameOutputs(t, r1, r2, "segmented warm rerun")
}

func TestSimCacheDoesNotChangeTheGraph(t *testing.T) {
	res := incResources(t)

	plain := DefaultConfig()
	noCache, err := NewSystem(res, plain)
	if err != nil {
		t.Fatal(err)
	}

	cached := DefaultConfig()
	cached.Cache = NewSimCache()
	withCache, err := NewSystem(res, cached)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache with one construction, then build again: cache hits
	// must reproduce the identical graph (same factor signatures).
	again, err := NewSystem(res, cached)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Cache.Len() == 0 {
		t.Fatalf("cache unused during construction")
	}

	want := noCache.Graph().Signatures()
	for name, g := range map[string]interface {
		Signatures() []factorgraph.SigKey
	}{
		"first cached build":  withCache.Graph(),
		"second cached build": again.Graph(),
	} {
		if !reflect.DeepEqual(g.Signatures(), want) {
			t.Errorf("%s: factor signatures differ from uncached build", name)
		}
	}
}

func TestNoOpRepairKeepsAllBlocksWarm(t *testing.T) {
	// The rebuild path must not discard warm state just because the
	// partition object changed: a repaired partition whose blocks are
	// identical (fingerprints match) keeps every block warm, with no
	// re-derivation and no sweeps.
	res := incResources(t)
	cfg := DefaultConfig()
	cfg.Cache = NewSimCache()
	cfg.Segment.Enable = true
	cfg.Segment.MaxOuterRounds = 16
	cfg.Segment.BoundaryTolerance = 0.005

	first, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, warm, st1 := first.RunIncremental(nil, 4)
	if st1.PartitionRepaired {
		t.Fatalf("cold run cannot repair a partition: %+v", st1)
	}
	if warm.Partition == nil || len(warm.BlockFP) == 0 {
		t.Fatalf("segmented run exported no partition memory / block fingerprints")
	}
	if st1.BoundaryResidual > cfg.Segment.BoundaryTolerance && st1.BoundaryResidual != 0 {
		t.Fatalf("first run's boundary did not settle (residual %g)", st1.BoundaryResidual)
	}

	second, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, st2 := second.RunIncremental(warm, 4)
	if !st2.PartitionRepaired {
		t.Fatalf("rebuild with memory did not repair the partition: %+v", st2)
	}
	if st2.RepairBlocksRecut != 0 || st2.RepairBlocksReused != st2.Components {
		t.Fatalf("no-op repair re-derived blocks: %+v", st2)
	}
	if st2.Dirty != 0 || st2.Reused != st2.Components || st2.SweepsTotal != 0 {
		t.Fatalf("no-op repair must keep all blocks warm: %+v", st2)
	}
	sameOutputs(t, r1, r2, "no-op repair rerun")
}

func TestNoRepairConfigRederivesPerBuild(t *testing.T) {
	res := incResources(t)
	cfg := DefaultConfig()
	cfg.Cache = NewSimCache()
	cfg.Segment.Enable = true
	cfg.Segment.NoRepair = true

	first, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, _ := first.RunIncremental(nil, 4)
	second, err := NewSystem(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, st2 := second.RunIncremental(warm, 4)
	if st2.PartitionRepaired || st2.RepairBlocksReused != 0 {
		t.Fatalf("Segment.NoRepair still repaired the partition: %+v", st2)
	}
}
