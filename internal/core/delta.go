package core

import (
	"slices"

	"repro/internal/factorgraph"
)

// CanonDelta describes which phrases' canonical-KB outputs may differ
// from the previous build's, keyed by the partition blocks that
// actually ran belief propagation. It is what lets the read-path
// subsystem (internal/query) maintain its materialized indexes
// delta-wise instead of re-deriving them over the whole KB per ingest.
//
// Phrases are identified by their okb symbol ids — the serving stack's
// hot path never builds per-ingest strings; consumers resolve ids back
// to surfaces at the read API boundary (okb.SymbolTable.Surface).
//
// The touched sets are sound over-approximations of the changed
// outputs: a clean block's transplanted messages are bit-identical to
// the previous build's fixed point, so its variables decode — and
// carry marginals — exactly as before. Only three things can move a
// phrase's output between builds:
//
//   - a variable in a block that ran (new factors, changed potentials,
//     or a moved frozen boundary) — covered by walking ran blocks;
//   - a cut variable whose factor neighborhood changed (fingerprint
//     mismatch) or whose belief the run actually moved, compared
//     bitwise against the pre-run imported belief — an unchanged
//     neighborhood transplants the previous build's messages verbatim,
//     so an unmoved belief decodes and scores identically and hub
//     phrases are NOT flagged on every ingest;
//   - the Section 3.5 conflict-resolution post-process, which relabels
//     links globally — covered by ReassignedNPs/RPs, with the previous
//     build's reassignments carried forward by the consumer (a relabel
//     that is NOT re-applied this build reverts the phrase to its
//     decoded link, which is also a change).
type CanonDelta struct {
	// Full marks builds with no previous state to delta against (cold
	// start, epoch refresh): every output may differ and consumers must
	// rebuild. The touched sets are left empty.
	Full bool
	// TouchedNPs / TouchedRPs list, sorted, the symbol ids of phrases
	// referenced by any variable of a block that ran (pair variables
	// reference both endpoint phrases), by any cut variable when the
	// boundary was refreshed, or by a conflict-resolution relabel this
	// build.
	TouchedNPs []int32
	TouchedRPs []int32
	// ReassignedNPs / ReassignedRPs list the symbol ids of phrases whose
	// links the conflict-resolution post-process relabeled in this build
	// (always subsets of the touched sets). Consumers must treat the
	// previous build's reassigned phrases as touched too: an
	// un-re-applied relabel reverts silently.
	ReassignedNPs []int32
	ReassignedRPs []int32
	// RemovedNPs / RemovedRPs list, sorted, the symbol ids of phrases
	// whose last live mention was retracted before this build: the new
	// graph has no variables for them, so the ran-block walk above
	// cannot see them and the write path injects them from the store
	// retraction instead (CanonDelta.AddRemovals). Each removal is a
	// cluster-split event — the phrase leaves whatever cluster it
	// belonged to, and consumers must delete its entries and rewrite
	// the cluster it left behind. Phrases that lost mentions but still
	// have live ones keep their pair variables and are covered by the
	// touched sets as usual, which is what keeps downstream maintenance
	// O(dirty) under retraction.
	RemovedNPs []int32
	RemovedRPs []int32
	// BlocksRan counts the partition blocks that ran BP this build.
	BlocksRan int
}

// AddRemovals records phrases retracted out of existence since the
// previous build. Ids must be sorted; the call merges them into the
// removed sets (duplicates collapse). The write path calls this after
// RunIncremental because removed phrases have no variables for the
// delta derivation to find.
func (d *CanonDelta) AddRemovals(nps, rps []int32) {
	d.RemovedNPs = mergeSorted(d.RemovedNPs, nps)
	d.RemovedRPs = mergeSorted(d.RemovedRPs, rps)
}

// mergeSorted merges two sorted id slices, dropping duplicates.
func mergeSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return slices.Clone(b)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// canonDelta assembles the delta for one RunIncremental build from the
// partition, the per-block run record, and the conflict-resolution
// relabels finish recorded on the system.
func (s *System) canonDelta(part *factorgraph.Partition, pr factorgraph.PartitionRun, bp *factorgraph.BP, cutBefore [][]float64, cutChanged []bool, cold bool) *CanonDelta {
	d := &CanonDelta{
		ReassignedNPs: s.internSorted(s.reassignedNPs),
		ReassignedRPs: s.internSorted(s.reassignedRPs),
	}
	if cold {
		d.Full = true
		for _, run := range pr.Blocks {
			if run.Sweeps > 0 {
				d.BlocksRan++
			}
		}
		return d
	}

	ranBlock := make([]bool, len(part.Blocks))
	anyRan := false
	for ci, run := range pr.Blocks {
		if run.Sweeps > 0 {
			ranBlock[ci] = true
			anyRan = true
			d.BlocksRan++
		}
	}
	// A refreshed boundary may move any cut variable's belief (cut
	// factors couple cut variables to each other, so the movement is
	// not confined to cuts bordering ran blocks). Flag a cut variable
	// when its neighborhood changed or its belief moved vs the pre-run
	// snapshot; with no snapshots at all, flag every cut variable once
	// anything ran.
	cutMoved := map[int]bool{}
	for i, vid := range part.Cut {
		switch {
		case cutBefore == nil:
			if anyRan {
				cutMoved[vid] = true
			}
		case cutChanged[i] || !equalBeliefs(cutBefore[i], bp.VarBelief(vid)):
			cutMoved[vid] = true
		}
	}
	touched := func(vid int) bool {
		if vid < 0 {
			return false
		}
		if b := part.BlockOf[vid]; b >= 0 {
			return ranBlock[b]
		}
		return cutMoved[vid]
	}

	nps := make(map[int32]bool)
	rps := make(map[int32]bool)
	for _, sym := range d.ReassignedNPs {
		nps[sym] = true
	}
	for _, sym := range d.ReassignedRPs {
		rps[sym] = true
	}
	if s.cfg.EnableCanon {
		for pi, p := range s.npPairs {
			if touched(s.npPairVar[pi]) {
				nps[s.npSyms[p.I]] = true
				nps[s.npSyms[p.J]] = true
			}
		}
		for pi, p := range s.rpPairs {
			if touched(s.rpPairVar[pi]) {
				rps[s.rpSyms[p.I]] = true
				rps[s.rpSyms[p.J]] = true
			}
		}
	}
	if s.cfg.EnableLink {
		for i, v := range s.npLinkVar {
			if touched(v) {
				nps[s.npSyms[i]] = true
			}
		}
		for i, v := range s.rpLinkVar {
			if touched(v) {
				rps[s.rpSyms[i]] = true
			}
		}
	}
	d.TouchedNPs = sortedSyms(nps)
	d.TouchedRPs = sortedSyms(rps)
	return d
}

// equalBeliefs compares two belief vectors bitwise (exact float
// equality: the touched-set soundness argument rests on bit-identical
// messages producing bit-identical decodes, nothing weaker).
func equalBeliefs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// internSorted maps phrase surfaces to their symbol ids, sorted. The
// phrases were interned at construction, so this is a pure lookup.
func (s *System) internSorted(phrases []string) []int32 {
	if len(phrases) == 0 {
		return nil
	}
	out := make([]int32, len(phrases))
	for i, p := range phrases {
		out[i] = s.syms.Intern(p)
	}
	slices.Sort(out)
	return out
}

func sortedSyms(m map[int32]bool) []int32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
