package core

import (
	"fmt"
	"sort"

	"repro/internal/embedding"
	"repro/internal/factorgraph"
	"repro/internal/okb"
	"repro/internal/signals"
	"repro/internal/text"
)

// Derived-symbol kinds for the graph's variables (see
// okb.SymbolTable.InternDerived): NP/RP pair variables and NP/RP
// linking variables, built from phrase symbol ids.
const (
	symKindNPPair  = 'x'
	symKindRPPair  = 'y'
	symKindEntLink = 'e'
	symKindRelLink = 'r'
)

// System is a constructed JOCL factor graph over one OKB + CKB pair,
// ready for learning and inference.
type System struct {
	res *signals.Resources
	cfg Config
	g   *factorgraph.Graph

	// syms is the OKB's interning table; every variable the system adds
	// carries a symbol id derived from it, so identities survive the
	// per-ingest rebuilds of the streaming path.
	syms   *okb.SymbolTable
	npSyms []int32 // symbol id per NP surface (parallel to nps)
	rpSyms []int32

	nps []string
	rps []string

	npPairs []signals.Pair
	rpPairs []signals.Pair

	npPairVar []int // graph variable id per blocked NP pair
	rpPairVar []int
	npLinkVar []int // graph variable id per NP surface (-1 if disabled)
	rpLinkVar []int

	// Candidate target ids per phrase; linking-variable state s >= 1
	// denotes cands[s-1], state 0 denotes NIL.
	npCands [][]string
	rpCands [][]string

	sched *factorgraph.Schedule
	stats Stats

	// reassignedNPs / reassignedRPs record the phrases the last finish's
	// conflict-resolution pass relabeled, feeding the read-path delta
	// (see CanonDelta).
	reassignedNPs []string
	reassignedRPs []string
}

// weightIDs for the factor families (shared across all factors of a
// family — the paper's tied alpha/beta parameters).
type weights struct {
	npCanon []int
	rpCanon []int
	entLink []int
	relLink []int
	entNil  int
	relNil  int

	transNP, transRP int
	fact             int
	consNP, consRP   int
}

// NewSystem builds the factor graph for the resources under cfg.
func NewSystem(res *signals.Resources, cfg Config) (*System, error) {
	if !cfg.EnableCanon && !cfg.EnableLink {
		return nil, fmt.Errorf("core: at least one task must be enabled")
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 6
	}
	if cfg.BlockingThreshold <= 0 {
		cfg.BlockingThreshold = signals.BlockingThreshold
	}
	s := &System{
		res: res,
		cfg: cfg,
		g:   factorgraph.New(),
		nps: res.OKB.NPs(),
		rps: res.OKB.RPs(),
	}
	s.syms = res.OKB.Symbols()
	if s.syms == nil {
		s.syms = okb.NewSymbolTable()
	}
	s.npSyms = make([]int32, len(s.nps))
	for i, np := range s.nps {
		s.npSyms[i] = s.syms.Intern(np)
	}
	s.rpSyms = make([]int32, len(s.rps))
	for i, rp := range s.rps {
		s.rpSyms[i] = s.syms.Intern(rp)
	}
	w := s.registerWeights()
	if len(cfg.InitialWeights) > 0 {
		for id := 0; id < len(s.g.Weights()); id++ {
			if v, ok := cfg.InitialWeights[s.g.WeightName(id)]; ok {
				s.g.SetWeight(id, v)
			}
		}
	}

	// Candidate lists are needed both for the linking variables and for
	// shared-candidate blocking, so compute them up front.
	s.npCands = make([][]string, len(s.nps))
	for i, np := range s.nps {
		cands := res.CKB.CandidateEntities(np, s.cfg.MaxCandidates)
		ids := make([]string, len(cands))
		for k, c := range cands {
			ids[k] = c.ID
		}
		s.npCands[i] = ids
	}
	s.rpCands = make([][]string, len(s.rps))
	for i, rp := range s.rps {
		cands := res.CKB.CandidateRelations(rp, s.cfg.MaxCandidates)
		ids := make([]string, len(cands))
		for k, c := range cands {
			ids[k] = c.ID
		}
		s.rpCands[i] = ids
	}

	var canonVars, linkVars []int
	var canonF, transF, linkF, factF, consF []int

	if cfg.EnableCanon {
		// NP pairs: IDF blocking, shared CKB candidates, and shared
		// paraphrase-cluster representatives.
		s.npPairs = s.blockPairs(s.nps, res.OKB.NPIDF(), s.npCands, false,
			func(p string) string { return res.PPDB.Representative(p) })
		// RP pairs additionally bucket by KBP category and AMIE-rule
		// partners — the binary RP signals would otherwise have no
		// variable to fire on for token-disjoint paraphrases.
		// RP embeddings discriminate relations well (each relation's
		// paraphrases share contexts), so embedding-neighbor blocking is
		// enabled for RPs; NP embeddings share topical contexts across
		// entities, where it would flood false pairs.
		s.rpPairs = s.blockPairs(s.rps, res.OKB.RPIDF(), s.rpCands, true,
			func(p string) string { return res.PPDB.Representative(p) },
			func(p string) string { return text.Normalize(p) })
		s.stats.NPPairVars = len(s.npPairs)
		s.stats.RPPairVars = len(s.rpPairs)

		// Variable identities derive from the phrases' symbol ids, not
		// the phrase indexes: streaming rebuilds insert phrases into the
		// sorted lists and shift every index, and the warm-start
		// machinery (see RunIncremental) matches state across builds by
		// sym.
		s.npPairVar = make([]int, len(s.npPairs))
		for pi, pair := range s.npPairs {
			v := s.g.AddVariableSym(s.syms.InternDerived(symKindNPPair, s.npSyms[pair.I], s.npSyms[pair.J]), 2)
			s.npPairVar[pi] = v
			canonVars = append(canonVars, v)
			canonF = append(canonF, s.addCanonFactor("F1", v, pair.I, pair.J, cfg.Features.NPCanon, w.npCanon, true))
		}
		s.rpPairVar = make([]int, len(s.rpPairs))
		for pi, pair := range s.rpPairs {
			v := s.g.AddVariableSym(s.syms.InternDerived(symKindRPPair, s.rpSyms[pair.I], s.rpSyms[pair.J]), 2)
			s.rpPairVar[pi] = v
			canonVars = append(canonVars, v)
			canonF = append(canonF, s.addCanonFactor("F2", v, pair.I, pair.J, cfg.Features.RPCanon, w.rpCanon, false))
		}
		if cfg.EnableTransitive {
			transF = append(transF, s.addTransitiveFactors("U1", s.npPairs, s.npPairVar, w.transNP)...)
			transF = append(transF, s.addTransitiveFactors("U2", s.rpPairs, s.rpPairVar, w.transRP)...)
		}
	}

	if cfg.EnableLink {
		s.npLinkVar = make([]int, len(s.nps))
		for i, np := range s.nps {
			ids := s.npCands[i]
			v := s.g.AddVariableSym(s.syms.InternDerived(symKindEntLink, s.npSyms[i], -1), 1+len(ids))
			s.npLinkVar[i] = v
			linkVars = append(linkVars, v)
			linkF = append(linkF, s.addEntLinkFactor(v, np, s.npSyms[i], ids, w))
		}
		s.stats.NPLinkVars = len(s.nps)

		s.rpLinkVar = make([]int, len(s.rps))
		for i, rp := range s.rps {
			ids := s.rpCands[i]
			v := s.g.AddVariableSym(s.syms.InternDerived(symKindRelLink, s.rpSyms[i], -1), 1+len(ids))
			s.rpLinkVar[i] = v
			linkVars = append(linkVars, v)
			linkF = append(linkF, s.addRelLinkFactor(v, rp, s.rpSyms[i], ids, w))
		}
		s.stats.RPLinkVars = len(s.rps)

		if cfg.EnableFactIncl {
			factF = s.addFactInclusionFactors(w.fact)
		}
	}

	if cfg.EnableCanon && cfg.EnableLink && cfg.EnableConsistency {
		consF = append(consF, s.addConsistencyFactors("U5", s.npPairs, s.npPairVar, s.npLinkVar, w.consNP)...)
		consF = append(consF, s.addConsistencyFactors("U6", s.rpPairs, s.rpPairVar, s.rpLinkVar, w.consRP)...)
	}

	s.g.Finalize()
	s.stats.Factors = s.g.NumFactors()

	// The paper's five-stage message schedule (Section 3.4): factor
	// messages flow canonicalization -> transitive -> linking -> fact
	// inclusion -> consistency; then variable messages flow from
	// canonicalization variables first, linking variables second.
	s.sched = &factorgraph.Schedule{}
	for _, grp := range [][]int{canonF, transF, linkF, factF, consF} {
		if len(grp) > 0 {
			s.sched.FactorGroups = append(s.sched.FactorGroups, grp)
		}
	}
	for _, grp := range [][]int{canonVars, linkVars} {
		if len(grp) > 0 {
			s.sched.VarGroups = append(s.sched.VarGroups, grp)
		}
	}
	return s, nil
}

func (s *System) registerWeights() *weights {
	w := &weights{}
	reg := func(prefix string, feats []string) []int {
		ids := make([]int, len(feats))
		for i, f := range feats {
			ids[i] = s.g.AddWeight(prefix+"."+f, 1.0)
		}
		return ids
	}
	w.npCanon = reg("alpha1", s.cfg.Features.NPCanon)
	w.rpCanon = reg("alpha2", s.cfg.Features.RPCanon)
	w.entLink = reg("alpha4", s.cfg.Features.EntLink)
	w.relLink = reg("alpha5", s.cfg.Features.RelLink)
	// NIL-bias weights: the paper's linking variables range over CKB
	// candidates only; our variables carry an explicit NIL state for
	// out-of-KB phrases, scored by a learnable bias (see DESIGN.md).
	w.entNil = s.g.AddWeight("alpha4.nil", 1.0)
	w.relNil = s.g.AddWeight("alpha5.nil", 1.0)
	w.transNP = s.g.AddWeight("beta1.trans.np", 1.0)
	w.transRP = s.g.AddWeight("beta2.trans.rp", 1.0)
	w.fact = s.g.AddWeight("beta4.fact", 1.0)
	w.consNP = s.g.AddWeight("beta5.cons.np", 1.0)
	w.consRP = s.g.AddWeight("beta6.cons.rp", 1.0)
	return w
}

// blockPairs generates the canonicalization pairs: every pair above the
// IDF-overlap threshold (the paper's blocking), plus — when
// BlockSharedCandidates is on — every pair of phrases whose CKB
// candidate lists intersect and every pair sharing a non-empty bucket
// key (paraphrase representative, KBP category, normalized form), so
// the consistency factors and binary signals have a variable to act on
// for token-disjoint paraphrases.
func (s *System) blockPairs(phrases []string, idf *text.IDFTable, cands [][]string, useEmb bool, buckets ...func(string) string) []signals.Pair {
	pairs := signals.BlockPairs(phrases, idf, s.cfg.BlockingThreshold)
	if !s.cfg.BlockSharedCandidates {
		return pairs
	}
	seen := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		seen[[2]int{p.I, p.J}] = true
	}
	addGroup := func(members []int) {
		if len(members) > s.cfg.MaxPhrasesPerTarget {
			members = members[:s.cfg.MaxPhrasesPerTarget]
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				i, j := members[a], members[b]
				if i > j {
					i, j = j, i
				}
				key := [2]int{i, j}
				if seen[key] {
					continue
				}
				seen[key] = true
				pairs = append(pairs, signals.Pair{I: i, J: j, Sim: idf.Overlap(phrases[i], phrases[j])})
			}
		}
	}
	emitBuckets := func(byKey map[string][]int) {
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			addGroup(byKey[k])
		}
	}

	byTarget := map[string][]int{}
	for i, ids := range cands {
		for _, id := range ids {
			byTarget[id] = append(byTarget[id], i)
		}
	}
	emitBuckets(byTarget)

	for _, bucket := range buckets {
		byKey := map[string][]int{}
		for i, p := range phrases {
			if k := bucket(p); k != "" {
				byKey[k] = append(byKey[k], i)
			}
		}
		emitBuckets(byKey)
	}

	// Embedding-neighbor blocking: distributional paraphrases with no
	// shared token, candidate, or bucket still get a pair variable.
	if k := s.cfg.EmbBlockTopK; useEmb && k > 0 && len(phrases) <= s.cfg.EmbBlockMaxPhrases {
		vecs := make([][]float64, len(phrases))
		for i, p := range phrases {
			vecs[i] = s.res.Emb.PhraseVector(p)
		}
		type scored struct {
			j   int
			sim float64
		}
		for i := range phrases {
			if vecs[i] == nil {
				continue
			}
			var best []scored
			for j := range phrases {
				if j == i || vecs[j] == nil {
					continue
				}
				sim := embedding.Cosine(vecs[i], vecs[j])
				if sim < s.cfg.EmbBlockMinSim {
					continue
				}
				best = append(best, scored{j, sim})
			}
			sort.Slice(best, func(a, b int) bool {
				if best[a].sim != best[b].sim {
					return best[a].sim > best[b].sim
				}
				return best[a].j < best[b].j
			})
			if len(best) > k {
				best = best[:k]
			}
			for _, cand := range best {
				a, b := i, cand.j
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if seen[key] {
					continue
				}
				seen[key] = true
				pairs = append(pairs, signals.Pair{I: a, J: b, Sim: idf.Overlap(phrases[a], phrases[b])})
			}
		}
	}

	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].I != pairs[y].I {
			return pairs[x].I < pairs[y].I
		}
		return pairs[x].J < pairs[y].J
	})
	return pairs
}

// canonSim evaluates one canonicalization feature for a phrase pair,
// consulting the construction cache when one is configured. sa and sb
// are the phrases' symbol ids — the cache keys on them, so a hit costs
// no string hashing or key building.
func (s *System) canonSim(feat, a, b string, sa, sb int32, np bool) float64 {
	if c := s.cfg.Cache; c != nil {
		kind := byte('R')
		if np {
			kind = 'N'
		}
		key := simKey{kind: kind, feat: feat, a: sa, b: sb}
		if v, ok := c.get(key); ok {
			return v
		}
		v := s.canonSimUncached(feat, a, b, np)
		c.put(key, v)
		return v
	}
	return s.canonSimUncached(feat, a, b, np)
}

func (s *System) canonSimUncached(feat, a, b string, np bool) float64 {
	switch feat {
	case FeatIDF:
		if np {
			return s.res.NPIDF(a, b)
		}
		return s.res.RPIDF(a, b)
	case FeatEmb:
		return s.res.EmbSim(a, b)
	case FeatPPDB:
		return s.res.PPDBSim(a, b)
	case FeatAMIE:
		return s.res.AMIESim(a, b)
	case FeatKBP:
		return s.res.KBPSim(a, b)
	case FeatAttr:
		return s.res.AttrSim(a, b)
	}
	panic("core: unknown canonicalization feature " + feat)
}

// addCanonFactor adds an F1/F2/F3-style factor over one binary
// canonicalization variable for the pair (i, j) of the NP or RP phrase
// list. Feature k takes value sim_k when the variable is 1 and 1-sim_k
// when it is 0, per the paper's f definitions.
func (s *System) addCanonFactor(name string, v, i, j int, feats []string, wids []int, np bool) int {
	var a, b string
	var sa, sb int32
	if np {
		a, b, sa, sb = s.nps[i], s.nps[j], s.npSyms[i], s.npSyms[j]
	} else {
		a, b, sa, sb = s.rps[i], s.rps[j], s.rpSyms[i], s.rpSyms[j]
	}
	rows := [2][]float64{make([]float64, len(feats)), make([]float64, len(feats))}
	for k, f := range feats {
		sim := s.canonSim(f, a, b, sa, sb, np)
		rows[0][k] = 1 - sim
		rows[1][k] = sim
	}
	return s.g.AddFactor(name, []int{v}, wids, func(states []int) []float64 {
		return rows[states[0]]
	})
}

// addEntLinkFactor adds an F4/F6-style factor over one entity-linking
// variable: per candidate state the enabled linking features, plus the
// NIL-bias feature that fires only in state 0.
func (s *System) addEntLinkFactor(v int, np string, npSym int32, cands []string, w *weights) int {
	feats := s.cfg.Features.EntLink
	table := make([][]float64, 1+len(cands))
	table[0] = make([]float64, len(feats)+1)
	for ci, eid := range cands {
		eidSym := s.syms.Intern(eid)
		row := make([]float64, len(feats)+1)
		for k, f := range feats {
			row[k] = s.entLinkSim(f, np, eid, npSym, eidSym)
		}
		table[1+ci] = row
	}
	table[0][len(feats)] = nilEvidence(table[1:], len(feats))
	wids := append(append([]int(nil), w.entLink...), w.entNil)
	return s.g.AddFactor("F4", []int{v}, wids, func(states []int) []float64 {
		return table[states[0]]
	})
}

// nilEvidence scores the NIL state of a linking variable: 1 minus the
// best candidate's mean feature value. A phrase whose strongest
// candidate is weak is probably out of the KB — the abstention
// principle context-free linkers (Spotlight, TagMe) rely on, here as a
// learnable feature rather than a hard threshold.
func nilEvidence(candRows [][]float64, nFeats int) float64 {
	best := 0.0
	for _, row := range candRows {
		sum := 0.0
		for k := 0; k < nFeats; k++ {
			sum += row[k]
		}
		if nFeats > 0 {
			if mean := sum / float64(nFeats); mean > best {
				best = mean
			}
		}
	}
	if best > 1 {
		best = 1
	}
	return 1 - best
}

// addRelLinkFactor adds the F5-style factor for one relation-linking
// variable.
func (s *System) addRelLinkFactor(v int, rp string, rpSym int32, cands []string, w *weights) int {
	feats := s.cfg.Features.RelLink
	table := make([][]float64, 1+len(cands))
	table[0] = make([]float64, len(feats)+1)
	for ci, rid := range cands {
		ridSym := s.syms.Intern(rid)
		row := make([]float64, len(feats)+1)
		for k, f := range feats {
			row[k] = s.relLinkSim(f, rp, rid, rpSym, ridSym)
		}
		table[1+ci] = row
	}
	table[0][len(feats)] = nilEvidence(table[1:], len(feats))
	wids := append(append([]int(nil), w.relLink...), w.relNil)
	return s.g.AddFactor("F5", []int{v}, wids, func(states []int) []float64 {
		return table[states[0]]
	})
}

// addTransitiveFactors adds a U1/U2/U3-style factor for every triangle
// of blocked pairs: (i,j), (j,k), (i,k) all blocked.
func (s *System) addTransitiveFactors(name string, pairs []signals.Pair, pairVar []int, wid int) []int {
	pairIdx := make(map[[2]int]int, len(pairs))
	adj := map[int][]int{}
	for pi, p := range pairs {
		pairIdx[[2]int{p.I, p.J}] = pi
		adj[p.I] = append(adj[p.I], p.J)
		adj[p.J] = append(adj[p.J], p.I)
	}
	lookup := func(a, b int) (int, bool) {
		if a > b {
			a, b = b, a
		}
		pi, ok := pairIdx[[2]int{a, b}]
		return pi, ok
	}
	high, mid, low := s.cfg.TransHigh, s.cfg.TransMid, s.cfg.TransLow
	// The rows are constants of the call: share one set across every
	// triangle factor instead of allocating a fresh slice per assignment.
	highRow, midRow, lowRow := []float64{high}, []float64{mid}, []float64{low}
	var out []int
	for pi, p := range pairs {
		if len(out) >= s.cfg.MaxTriangles {
			break
		}
		// Close triangles through the smaller endpoint's adjacency; only
		// accept k > J to count each triangle once.
		for _, k := range adj[p.I] {
			if k <= p.J {
				continue
			}
			pjk, ok1 := lookup(p.J, k)
			pik, ok2 := lookup(p.I, k)
			if !ok1 || !ok2 {
				continue
			}
			vars := []int{pairVar[pi], pairVar[pjk], pairVar[pik]}
			out = append(out, s.g.AddFactor(name, vars, []int{wid}, func(states []int) []float64 {
				ones := states[0] + states[1] + states[2]
				switch ones {
				case 3:
					return highRow
				case 2:
					return lowRow
				default:
					return midRow
				}
			}))
			if len(out) >= s.cfg.MaxTriangles {
				break
			}
		}
	}
	return out
}

// addFactInclusionFactors adds a U4 factor per OIE triple over its
// subject, predicate, and object linking variables.
func (s *System) addFactInclusionFactors(wid int) []int {
	npIdx := make(map[string]int, len(s.nps))
	for i, np := range s.nps {
		npIdx[np] = i
	}
	rpIdx := make(map[string]int, len(s.rps))
	for i, rp := range s.rps {
		rpIdx[rp] = i
	}
	high, low := s.cfg.FactHigh, s.cfg.FactLow
	highRow, lowRow := []float64{high}, []float64{low}
	var out []int
	for ti := 0; ti < s.res.OKB.Len(); ti++ {
		if s.res.OKB.Dead(ti) {
			continue // retracted: its U4 evidence goes with it
		}
		t := s.res.OKB.Triple(ti)
		si, pi, oi := npIdx[t.Subj], rpIdx[t.Pred], npIdx[t.Obj]
		if t.Subj == t.Obj {
			continue // degenerate extraction; no U4
		}
		subjCands, relCands, objCands := s.npCands[si], s.rpCands[pi], s.npCands[oi]
		vars := []int{s.npLinkVar[si], s.rpLinkVar[pi], s.npLinkVar[oi]}
		out = append(out, s.g.AddFactor("U4", vars, []int{wid}, func(states []int) []float64 {
			if states[0] == 0 || states[1] == 0 || states[2] == 0 {
				return lowRow
			}
			if s.res.CKB.HasFact(subjCands[states[0]-1], relCands[states[1]-1], objCands[states[2]-1]) {
				return highRow
			}
			return lowRow
		}))
	}
	return out
}

// addConsistencyFactors adds a U5/U6/U7 factor per blocked pair over
// (link_a, link_b, pairVar): same-target + pair=1 or different-target +
// pair=0 is consistent (high); disagreement is inconsistent (low);
// pairs involving a NIL state are scored neutrally between the two,
// since two out-of-KB phrases may or may not corefer.
//
// The coupling is gated by the pair's own canonicalization evidence
// (the mean of its textual feature values): a pair blocked only
// because its phrases share a CKB candidate carries little evidence of
// coreference, and full-strength coupling on such pairs lets linking
// errors and canonicalization errors amplify each other. Scores shrink
// toward the neutral midpoint as evidence weakens.
func (s *System) addConsistencyFactors(name string, pairs []signals.Pair, pairVar []int, linkVar []int, wid int) []int {
	high, low := s.cfg.ConsHigh, s.cfg.ConsLow
	mid := (high + low) / 2
	var cands [][]string
	var phrases []string
	var syms []int32
	var feats []string
	np := name == "U5"
	if np {
		cands, phrases, syms, feats = s.npCands, s.nps, s.npSyms, s.cfg.Features.NPCanon
	} else {
		cands, phrases, syms, feats = s.rpCands, s.rps, s.rpSyms, s.cfg.Features.RPCanon
	}
	midRow := []float64{mid}
	var out []int
	for pi, p := range pairs {
		gate := 0.0
		if len(feats) > 0 {
			for _, f := range feats {
				gate += s.canonSim(f, phrases[p.I], phrases[p.J], syms[p.I], syms[p.J], np)
			}
			gate /= float64(len(feats))
		}
		gHighRow := []float64{mid + gate*(high-mid)}
		gLowRow := []float64{mid + gate*(low-mid)}
		ca, cb := cands[p.I], cands[p.J]
		vars := []int{linkVar[p.I], linkVar[p.J], pairVar[pi]}
		out = append(out, s.g.AddFactor(name, vars, []int{wid}, func(states []int) []float64 {
			switch {
			case states[0] == 0 && states[1] == 0:
				// Both out of KB: a positive pair is consistent (two
				// aliases of the same unseen entity); a negative pair is
				// neutral — two distinct unseen entities also decode to
				// NIL. Without the x=1 reward here, coreferring OOV
				// phrases would be pushed to adopt the same wrong
				// candidate just to satisfy consistency.
				if states[2] == 1 {
					return gHighRow
				}
				return midRow
			case states[0] == 0 || states[1] == 0:
				return midRow
			}
			same := ca[states[0]-1] == cb[states[1]-1]
			consistent := (same && states[2] == 1) || (!same && states[2] == 0)
			if consistent {
				return gHighRow
			}
			return gLowRow
		}))
	}
	return out
}

// Graph exposes the underlying factor graph (primarily for tests and
// diagnostics).
func (s *System) Graph() *factorgraph.Graph { return s.g }

// WeightValues returns the current factor weights by registered name —
// after Run with labels, these are the learned parameters, ready to
// seed another system via Config.InitialWeights.
func (s *System) WeightValues() map[string]float64 {
	out := make(map[string]float64, len(s.g.Weights()))
	for id, v := range s.g.Weights() {
		out[s.g.WeightName(id)] = v
	}
	return out
}

// Schedule returns the paper-order message schedule.
func (s *System) Schedule() *factorgraph.Schedule { return s.sched }
