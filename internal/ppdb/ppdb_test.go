package ppdb

import "testing"

func TestBuildAndLookup(t *testing.T) {
	b := NewBuilder()
	b.AddGroup("is the capital of", "is the capital city of")
	b.AddPair("member of", "belongs to")
	db := b.Build()

	if db.Sim("is the capital of", "is the capital city of") != 1 {
		t.Error("grouped phrases should have sim 1")
	}
	if db.Sim("member of", "belongs to") != 1 {
		t.Error("paired phrases should have sim 1")
	}
	if db.Sim("is the capital of", "member of") != 0 {
		t.Error("phrases from different groups should have sim 0")
	}
}

func TestUncoveredPhrases(t *testing.T) {
	b := NewBuilder()
	b.AddPair("a", "b")
	db := b.Build()
	if db.Sim("nothere", "nothere") != 0 {
		t.Error("uncovered phrases must score 0, even when identical")
	}
	if db.Contains("nothere") {
		t.Error("Contains(nothere) = true")
	}
	if !db.Contains("a") {
		t.Error("Contains(a) = false")
	}
	if db.Representative("nothere") != "" {
		t.Error("missing phrase should have empty representative")
	}
}

func TestTransitiveGrouping(t *testing.T) {
	// a~b and b~c must place a and c in the same cluster.
	b := NewBuilder()
	b.AddPair("alpha", "beta")
	b.AddPair("beta", "gamma")
	db := b.Build()
	if db.Sim("alpha", "gamma") != 1 {
		t.Error("paraphrase clusters must be transitive")
	}
}

func TestNormalizedLookup(t *testing.T) {
	b := NewBuilder()
	b.AddPair("is a member of", "belongs to")
	db := b.Build()
	// Morphological variants hit the same entry.
	if db.Sim("was a member of", "belongs to") != 1 {
		t.Error("lookup should be normalization-invariant")
	}
}

func TestRepresentativeDeterministic(t *testing.T) {
	build := func() *DB {
		b := NewBuilder()
		b.AddGroup("zeta", "alpha", "mike")
		return b.Build()
	}
	r1 := build().Representative("zeta")
	r2 := build().Representative("mike")
	if r1 != r2 || r1 != "alpha" {
		t.Errorf("representative should be the smallest member: %q, %q", r1, r2)
	}
}

func TestEmptyBuilder(t *testing.T) {
	db := NewBuilder().Build()
	if db.Size() != 0 {
		t.Errorf("Size = %d, want 0", db.Size())
	}
	if db.Sim("x", "y") != 0 {
		t.Error("empty DB must score 0")
	}
}

func TestAddGroupEmpty(t *testing.T) {
	b := NewBuilder()
	b.AddGroup() // must not panic
	if got := b.Build().Size(); got != 0 {
		t.Errorf("Size = %d, want 0", got)
	}
}
