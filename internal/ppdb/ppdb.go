// Package ppdb provides a paraphrase database with the same interface
// the paper uses PPDB 2.0 through: phrases are clustered into
// equivalence groups, each group is assigned a representative, and two
// phrases are "PPDB-equivalent" (similarity 1) exactly when they share
// a representative (similarity 0 otherwise). Lookups normalize phrases
// morphologically first, as paraphrase collections index lemmas.
//
// The real PPDB is an unavailable external resource; the dataset
// generator builds a DB from its alias pools (optionally with dropped
// and corrupted entries to model PPDB's incomplete coverage).
package ppdb

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/text"
)

// DB is an immutable paraphrase database.
type DB struct {
	rep map[string]string // normalized phrase -> representative
}

// Builder accumulates paraphrase pairs/groups before freezing into a DB.
type Builder struct {
	phrases map[string]int // normalized phrase -> dense id
	names   []string
	pairs   [][2]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{phrases: make(map[string]int)}
}

func (b *Builder) id(phrase string) int {
	key := text.Normalize(phrase)
	if id, ok := b.phrases[key]; ok {
		return id
	}
	id := len(b.names)
	b.phrases[key] = id
	b.names = append(b.names, key)
	return id
}

// AddPair records that a and b are paraphrases of each other.
func (b *Builder) AddPair(a, c string) {
	b.pairs = append(b.pairs, [2]int{b.id(a), b.id(c)})
}

// AddGroup records that all given phrases are mutual paraphrases.
func (b *Builder) AddGroup(phrases ...string) {
	if len(phrases) == 0 {
		return
	}
	first := b.id(phrases[0])
	for _, p := range phrases[1:] {
		b.pairs = append(b.pairs, [2]int{first, b.id(p)})
	}
}

// Build freezes the builder into a DB. Paraphrase groups are the
// connected components of the pair graph; each group's representative
// is its lexicographically-smallest member ("randomly assigned" in the
// paper — any deterministic choice has the same semantics, since only
// representative equality is ever observed).
func (b *Builder) Build() *DB {
	uf := cluster.NewUnionFind(len(b.names))
	for _, p := range b.pairs {
		uf.Union(p[0], p[1])
	}
	rep := make(map[string]string, len(b.names))
	groupRep := make(map[int]string)
	// Choose the smallest member of each group as representative.
	order := make([]int, len(b.names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return b.names[order[i]] < b.names[order[j]] })
	for _, i := range order {
		r := uf.Find(i)
		if _, ok := groupRep[r]; !ok {
			groupRep[r] = b.names[i]
		}
	}
	for i, name := range b.names {
		rep[name] = groupRep[uf.Find(i)]
	}
	return &DB{rep: rep}
}

// Representative returns the cluster representative of the phrase, or
// "" when the phrase is not in the database.
func (db *DB) Representative(phrase string) string {
	return db.rep[text.Normalize(phrase)]
}

// Contains reports whether the phrase is covered by the database.
func (db *DB) Contains(phrase string) bool {
	_, ok := db.rep[text.Normalize(phrase)]
	return ok
}

// Sim returns Sim_PPDB(a, b): 1 when both phrases are in the database
// with the same cluster representative, else 0. This is exactly the
// paper's binary PPDB signal.
func (db *DB) Sim(a, b string) float64 {
	ra, rb := db.Representative(a), db.Representative(b)
	if ra != "" && ra == rb {
		return 1
	}
	return 0
}

// Size returns the number of distinct phrases indexed.
func (db *DB) Size() int { return len(db.rep) }
