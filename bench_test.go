package jocl

// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 4), plus micro-benchmarks of the substrates that
// dominate the pipeline's cost. Each table benchmark measures the full
// regeneration — baselines plus JOCL inference — on a small-scale
// synthetic suite; the memoization cache is cleared between iterations
// so every iteration pays the real cost.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embedding"
	"repro/internal/factorgraph"
	"repro/internal/signals"
)

const benchScale = 0.008

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func getSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = bench.NewSuite(benchScale)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func benchTable(b *testing.B, run func(s *bench.Suite) (*bench.Table, error)) {
	s := getSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		t, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable1_NPCanonicalization regenerates the paper's Table 1:
// eight NP canonicalization methods on both data sets.
func BenchmarkTable1_NPCanonicalization(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table1() })
}

// BenchmarkTable2_RPCanonicalization regenerates Table 2: four RP
// canonicalization methods on ReVerb45K.
func BenchmarkTable2_RPCanonicalization(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table2() })
}

// BenchmarkTable3_EntityLinking regenerates Table 3: six entity
// linking systems on both data sets.
func BenchmarkTable3_EntityLinking(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table3() })
}

// BenchmarkFigure3_RelationLinking regenerates Figure 3: five relation
// linking systems on ReVerb45K.
func BenchmarkFigure3_RelationLinking(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Figure3() })
}

// BenchmarkTable4_InteractionAblation regenerates Table 4: JOCLcano /
// JOCLlink / JOCL on ReVerb45K.
func BenchmarkTable4_InteractionAblation(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table4() })
}

// BenchmarkFigure4_FeatureAblation regenerates Figure 4 (and Table
// 5's variants): JOCL-single / -double / -all on ReVerb45K.
func BenchmarkFigure4_FeatureAblation(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Figure4() })
}

// BenchmarkExtraScheduleAblation measures the beyond-the-paper message
// schedule ablation (paper order vs flooding).
func BenchmarkExtraScheduleAblation(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.AblationSchedule() })
}

// BenchmarkExtraBlockingAblation measures the blocking-threshold sweep.
func BenchmarkExtraBlockingAblation(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.AblationBlocking() })
}

// ---------- component micro-benchmarks ----------

// BenchmarkJOCLInference measures one full JOCL build+train+infer pass
// over the ReVerb45K-profile benchmark.
func BenchmarkJOCLInference(b *testing.B) {
	s := getSuite(b)
	res := s.Resources(s.Reverb)
	labels := &core.Labels{
		NPLink:    s.Reverb.ValidationNPLinks(),
		RPLink:    s.Reverb.ValidationRPLinks(),
		NPCluster: s.Reverb.ValidationNPClusters(),
		RPCluster: s.Reverb.ValidationRPClusters(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(res, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(labels)
	}
}

// BenchmarkGraphConstruction isolates factor graph construction.
func BenchmarkGraphConstruction(b *testing.B) {
	s := getSuite(b)
	res := s.Resources(s.Reverb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSystem(res, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLBPSweeps measures scheduled loopy BP on the JOCL graph.
func BenchmarkLBPSweeps(b *testing.B) {
	s := getSuite(b)
	sys, err := core.NewSystem(s.Resources(s.Reverb), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	g := sys.Graph()
	bp := factorgraph.NewBP(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Reset()
		bp.Run(factorgraph.RunOptions{MaxSweeps: 5, Schedule: sys.Schedule()})
	}
}

// BenchmarkBlocking measures IDF pair blocking over the NP vocabulary.
func BenchmarkBlocking(b *testing.B) {
	s := getSuite(b)
	nps := s.Reverb.OKB.NPs()
	idf := s.Reverb.OKB.NPIDF()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signals.BlockPairs(nps, idf, 0.5)
	}
}

// BenchmarkEmbeddingTraining measures the PPMI+SVD embedding trainer
// on the benchmark's corpus-scale input.
func BenchmarkEmbeddingTraining(b *testing.B) {
	sents := make([][]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		sents = append(sents, []string{
			fmt.Sprintf("w%d", i%97), fmt.Sprintf("w%d", (i*7)%97),
			fmt.Sprintf("w%d", (i*13)%97), fmt.Sprintf("w%d", (i*29)%97),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embedding.Train(sents, embedding.Config{Dim: 32, Seed: 1})
	}
}

// BenchmarkHAC measures average-linkage clustering at baseline scale.
func BenchmarkHAC(b *testing.B) {
	n := 300
	sim := func(i, j int) float64 { return 1.0 / float64(1+(i-j)*(i-j)) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.HAC(n, sim, cluster.AverageLinkage, 0.3)
	}
}

// BenchmarkCandidateGeneration measures CKB candidate retrieval.
func BenchmarkCandidateGeneration(b *testing.B) {
	s := getSuite(b)
	nps := s.Reverb.OKB.NPs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reverb.CKB.CandidateEntities(nps[i%len(nps)], 6)
	}
}

// BenchmarkDatasetGeneration measures full benchmark synthesis
// (world + triples + anchors + embeddings + PPDB).
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datasets.Generate(datasets.ReVerb45K(0.005)); err != nil {
			b.Fatal(err)
		}
	}
}
