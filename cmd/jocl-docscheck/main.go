// Command jocl-docscheck is the documentation gate the CI docs job
// runs: it fails (exit 1) when a Markdown file contains a broken
// relative link, or when a checked Go package exports an identifier
// without a doc comment.
//
// Usage:
//
//	jocl-docscheck [-root .] [-pkgs .,internal/factorgraph,...]
//
// The Markdown pass walks every *.md under the root (skipping .git and
// the related/ reference mirror), extracts [text](target) links, and
// resolves non-URL targets against the file's directory (or the root,
// for /-absolute targets), ignoring pure #anchors. The godoc pass
// parses each listed package (default: the public jocl package plus
// internal/factorgraph, internal/core, internal/stream, internal/bench,
// internal/query, internal/checkpoint, internal/telemetry,
// internal/ingress)
// and reports exported functions, methods, types, and ungrouped
// const/var specs that carry no doc comment — the same surface the
// revive exported rule checks, implemented on the standard go/ast so CI
// needs no third-party linter.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var (
		root = flag.String("root", ".", "repository root to scan")
		pkgs = flag.String("pkgs", ".,internal/factorgraph,internal/core,internal/stream,internal/bench,internal/query,internal/checkpoint,internal/telemetry,internal/trace,internal/ingress",
			"comma-separated package directories to check for exported-identifier docs")
	)
	flag.Parse()

	var problems []string
	problems = append(problems, checkMarkdownLinks(*root)...)
	for _, dir := range strings.Split(*pkgs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		problems = append(problems, checkExportedDocs(filepath.Join(*root, dir))...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "jocl-docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("jocl-docscheck: ok")
}

// linkRe matches inline Markdown links and images; the target is
// captured without the optional title.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks verifies that every relative link target in every
// *.md file under root resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "related", "node_modules":
				if path != root {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		inFence := false
		for lineNo, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipTarget(target) {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if strings.HasPrefix(m[1], "/") {
					resolved = filepath.Join(root, target)
				}
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken relative link %q", path, lineNo+1, m[1]))
				}
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

func skipTarget(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// checkExportedDocs parses the non-test Go files of one package
// directory and reports exported declarations without doc comments.
func checkExportedDocs(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("parsing %s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver type is itself
// exported (unexported receivers need no doc).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// checkGenDecl reports exported type/const/var specs that carry no doc:
// a doc comment on the enclosing decl covers a grouped block (the
// idiomatic style for const enums), and per-spec doc or trailing line
// comments also count.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, kind, name string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			documented := d.Doc != nil || s.Doc != nil || s.Comment != nil
			if documented {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
