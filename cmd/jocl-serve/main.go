// Command jocl-serve exposes a streaming JOCL session over HTTP: an
// online canonicalization-and-linking service that accepts OIE triple
// batches as they are extracted and keeps a continuously updated joint
// result, re-running inference only on the parts of the factor graph
// each batch touches.
//
// Usage:
//
//	jocl-serve [-addr :8080] [-profile reverb45k] [-scale 0.02]
//	           [-workers 0] [-refresh-every 0] [-max-batch 10000]
//	           [-max-body-bytes 8388608]
//	           [-ingest-queue 64] [-coalesce-depth 16]
//	           [-coalesce-window 0] [-shed-depth 0]
//	           [-segment] [-hub-percentile 0.99] [-min-hub-degree 8]
//	           [-max-block-vars 0] [-target-blocks-per-worker 4]
//	           [-outer-rounds 4] [-boundary-tol 0.005] [-no-repair]
//	           [-query] [-query-max-results 1000] [-query-max-layers 4]
//	           [-retain-generations 4]
//	           [-checkpoint-dir DIR] [-checkpoint-every N]
//	           [-log-format text|json] [-trace-ring 64] [-pprof]
//	           [-trace] [-trace-slow 1s] [-trace-requests 128]
//	           [-stall-after 60s] [-slo-availability 0.999]
//	           [-slo-latency-pct 0.95] [-slo-latency-threshold 500ms]
//
// Ingest runs through a bounded asynchronous queue by default
// (-ingest-queue, 0 restores fully synchronous ingest): batches that
// arrive while the session is busy coalesce into one merged ingest (up
// to -coalesce-depth per merge; -coalesce-window optionally lingers
// for stragglers), the next batch's signal evaluation and graph build
// overlap the previous batch's belief propagation, and once queue
// depth reaches -shed-depth (default: the queue size) further /ingest
// requests are shed with 429 and a Retry-After estimate instead of
// queueing without bound. Merging is equivalence-tested against serial
// ingest — the response then reports the merged ingest's statistics
// with coalesced_batches > 1. Graceful shutdown drains the queue
// before the final checkpoint; queue pressure is visible as the
// jocl_ingress_* families on /metrics and the ingress block of /stats.
//
// -segment enables hub-cut graph segmentation: the highest-degree
// variables (popular phrases that fuse the factor graph into one giant
// component) are cut out of the inference blocks with frozen boundary
// messages, so each ingest re-runs belief propagation only on the
// small blocks it touched; the remaining flags tune the cut threshold
// and the frozen-boundary outer loop. The partition persists across
// rebuilds: each ingest repairs the previous build's cut set (blocks
// whose degree profile is unchanged are carried over verbatim, warm
// state included) unless -no-repair re-derives it per build, and an
// unset -max-block-vars is auto-tuned toward -target-blocks-per-worker
// blocks per inference worker.
//
// The curated KB and frozen signal resources come from the synthetic
// benchmark generator (the same substrate the rest of the repo
// evaluates on); -profile/-scale pick the world. Endpoints:
//
//	POST /ingest   {"triples": [{"subject": s, "predicate": p, "object": o}, ...]}
//	               -> per-batch ingest statistics (dirty components, sweeps, ms)
//	POST /retract  {"triples": [...]} -> tombstone every live triple matching a
//	               member by (s,p,o) and re-infer without the retracted evidence
//	               (404 when nothing matches; members matching nothing are skipped)
//	GET  /result   -> current canonicalization groups and KB links
//	GET  /stats    -> cumulative session statistics
//	GET  /healthz  -> liveness (200 once the KB is loaded)
//
// With the query index on (-query, the default), reads are served from
// incrementally-maintained canonical-KB indexes, concurrently with
// /ingest and without ever waiting behind it (each answer reports the
// index generation it was served from and how many ingests it trails):
//
//	GET  /query/resolve?np=S | ?rp=S        -> canonical cluster + KB link of a surface form
//	GET  /query/entity?id=E                 -> noun phrases linked to a KB entity
//	GET  /query/relation?id=R               -> relation phrases linked to a KB relation
//	GET  /query/cluster?np=S | ?rp=S        -> canonicalization cluster membership
//	GET  /query/triples?subject=S [&limit=N]  -> triples whose subject is in S's cluster
//	GET  /query/triples?relation=S [&limit=N] -> triples whose predicate is in S's cluster
//
// Every /query/* answer carries the index generation it was served from
// in the X-Jocl-Generation response header, and every /query/* endpoint
// accepts ?as_of=G to answer from a still-retained earlier generation
// instead of the newest one — the as-of answer is bitwise identical to
// what the same query returned when G was current. The index retains
// the last -retain-generations published generations (default 4); /stats
// lists the retained window as query_retained, and an ?as_of= pointing
// outside it answers 404.
//
// With -checkpoint-dir set the session is durable: on startup an
// existing checkpoint in the directory is restored (the process
// resumes ingesting warm — adopted blocks stay warm, partition repairs
// pick up the carried cuts, query generations continue with correct
// staleness), every N successful ingests (-checkpoint-every) a
// background goroutine writes a new snapshot off the ingest lock's hot
// path, POST /checkpoint forces one on demand, and a final snapshot is
// written during graceful shutdown. Checkpoints are atomic (temp file
// + fsync + rename), so a crash mid-write never leaves a torn file:
//
//	POST /checkpoint  -> {"path": ..., "bytes": ..., "batches": ..., "write_ms": ...}
//
// Request bodies are bounded by -max-body-bytes (413 beyond it);
// -max-batch additionally caps the triples per ingest batch.
//
// Observability (see docs/OBSERVABILITY.md for the full catalogue):
//
//	GET  /metrics         -> every session metric in Prometheus text format
//	GET  /debug/trace     -> the most recent per-ingest stage traces (?n= caps how many)
//	GET  /debug/requests  -> tail-sampled request traces (?trace=<id> retrieves one, ?n= caps)
//	GET  /debug/watchdog  -> pipeline liveness accounting + last stall's flight recorder
//	GET  /debug/pprof/*   -> runtime profiling endpoints (only with -pprof)
//
// Request tracing is on by default (-trace=false disables it): every
// ingest request gets a span tree under a W3C trace id — adopted from
// an incoming traceparent header or minted here, echoed back as
// X-Trace-Id and reported as trace_id in the ingest response and the
// request log line. Batches that coalesce into one merged session
// ingest link their request traces to a shared group trace carrying
// the per-stage spans. Requests slower than -trace-slow or ending
// abnormally (shed, cancelled, poisoned) are retained for
// /debug/requests; -trace-requests bounds the store.
//
// The /metrics families include SLO accounting over /ingest —
// jocl_slo_error_budget_remaining and multi-window jocl_slo_burn_rate
// against the -slo-availability and -slo-latency-* objectives — and,
// with the async queue on, a pipeline watchdog that declares a stall
// (jocl_watchdog_stalled) after -stall-after of heartbeat silence with
// work pending, capturing a flight-recorder snapshot for
// /debug/watchdog.
//
// Every request is logged through log/slog (request id, method, route
// pattern, status, duration, trace id); -log-format json switches the
// process to machine-readable logs. -trace-ring sizes the retained
// trace window.
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight ingests and queries drain, a final
// checkpoint is written (when -checkpoint-dir is set), then it exits.
//
// Example:
//
//	curl -s localhost:8080/ingest -d '{"triples":[{"subject":"barack obama","predicate":"be born in","object":"honolulu"}]}'
//	curl -s localhost:8080/query/resolve?np=obama | jq .
//	curl -s localhost:8080/query/triples?subject=obama | jq .triples
//	curl -s -X POST localhost:8080/checkpoint | jq .
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		profile      = flag.String("profile", "reverb45k", "benchmark profile backing the KB (reverb45k | nytimes2018)")
		scale        = flag.Float64("scale", 0.02, "fraction of the paper's data set size for the generated KB")
		workers      = flag.Int("workers", 0, "inference worker pool (0 = GOMAXPROCS)")
		refreshEvery = flag.Int("refresh-every", 0, "rebuild frozen signal statistics every N batches (0 = never)")
		maxBatch     = flag.Int("max-batch", 10000, "largest accepted ingest batch")
		ingestQueue  = flag.Int("ingest-queue", 64, "bounded async ingest queue depth (0 = synchronous ingest, no coalescing or shedding)")
		coalesceDep  = flag.Int("coalesce-depth", 0, "max queued batches merged into one ingest (0 = default 16; 1 disables merging, keeps pipelining)")
		coalesceWin  = flag.Duration("coalesce-window", 0, "how long to linger for straggler batches before sealing a merged ingest (0 = merge only already-queued batches)")
		shedDepth    = flag.Int("shed-depth", 0, "queue high-water mark past which /ingest sheds with 429 (0 = the queue depth)")
		segment      = flag.Bool("segment", false, "enable hub-cut graph segmentation")
		hubPct       = flag.Float64("hub-percentile", 0, "segmentation: degree percentile above which variables are cut (0 = default 0.99)")
		minHubDeg    = flag.Int("min-hub-degree", 0, "segmentation: absolute degree floor for cutting (0 = default 8)")
		maxBlockVars = flag.Int("max-block-vars", 0, "segmentation: size cap on inference blocks (0 = auto-tune, negative disables)")
		targetBPW    = flag.Int("target-blocks-per-worker", 0, "segmentation: blocks-per-worker ratio the auto-tuned size cap aims for (0 = default 4)")
		outerRounds  = flag.Int("outer-rounds", 0, "segmentation: max frozen-boundary outer rounds per ingest (0 = default 4)")
		boundaryTol  = flag.Float64("boundary-tol", 0, "segmentation: cut-belief convergence tolerance between rounds (0 = default 0.005)")
		noRepair     = flag.Bool("no-repair", false, "segmentation: re-derive the partition per rebuild instead of repairing the previous one")
		queryOn      = flag.Bool("query", true, "maintain the read-path query index (/query/* endpoints)")
		queryMaxRes  = flag.Int("query-max-results", 0, "query index: hard cap on triples per enumeration answer (0 = default 1000)")
		queryLayers  = flag.Int("query-max-layers", 0, "query index: overlay-chain depth before compaction (0 = default 4)")
		retainGens   = flag.Int("retain-generations", 0, "query index: published generations retained for ?as_of= reads (0 = default 4)")
		maxBody      = flag.Int64("max-body-bytes", 8<<20, "largest accepted request body in bytes (413 beyond it)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for durable session checkpoints (restore on startup, POST /checkpoint, periodic snapshots)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "write a background checkpoint every N successful ingests (0 = manual/shutdown checkpoints only; needs -checkpoint-dir)")
		logFormat    = flag.String("log-format", "text", "structured log encoding: text | json")
		traceRing    = flag.Int("trace-ring", 0, "per-ingest stage traces retained for /debug/trace (0 = default 64)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose internals)")
		tracingOn    = flag.Bool("trace", true, "request-scoped tracing: every ingest gets a span tree, slow/failed requests are retained for /debug/requests")
		traceSlow    = flag.Duration("trace-slow", 0, "tail-sampling latency bar: requests at least this slow are retained (0 = default 1s; negative retains everything)")
		traceReqs    = flag.Int("trace-requests", 0, "retained request and group traces, each (0 = default 128)")
		stallAfter   = flag.Duration("stall-after", 0, "ingest watchdog: declare a stall after this much heartbeat silence with work pending (0 = default 60s; negative disables)")
		sloAvail     = flag.Float64("slo-availability", 0, "availability SLO target over /ingest (0 = default 0.999)")
		sloLatPct    = flag.Float64("slo-latency-pct", 0, "latency SLO target: fraction of /ingest requests under -slo-latency-threshold (0 = default 0.95)")
		sloLatThresh = flag.Duration("slo-latency-threshold", 0, "latency SLO threshold (0 = default 500ms)")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "jocl-serve: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	logger.Info("generating KB", "profile", *profile, "scale", *scale)
	bench, err := jocl.GenerateBenchmark(*profile, *scale)
	if err != nil {
		fatal("generating benchmark KB", err)
	}
	opts := []jocl.Option{
		jocl.WithWorkers(*workers),
		jocl.WithRefreshEvery(*refreshEvery),
		jocl.WithTelemetry(jocl.TelemetryOptions{TraceRing: *traceRing}),
	}
	if *tracingOn {
		opts = append(opts, jocl.WithTracing(jocl.TraceOptions{
			SlowThreshold: *traceSlow,
			Capacity:      *traceReqs,
		}))
	} else {
		opts = append(opts, jocl.WithoutTracing())
	}
	if *queryOn {
		opts = append(opts, jocl.WithQueryIndex(jocl.QueryIndexOptions{
			MaxResults:        *queryMaxRes,
			MaxLayers:         *queryLayers,
			RetainGenerations: *retainGens,
		}))
	} else {
		opts = append(opts, jocl.WithoutQueryIndex())
	}
	if *ingestQueue > 0 {
		opts = append(opts, jocl.WithIngress(jocl.IngressOptions{
			QueueDepth:     *ingestQueue,
			CoalesceDepth:  *coalesceDep,
			CoalesceWindow: *coalesceWin,
			ShedDepth:      *shedDepth,
			StallAfter:     *stallAfter,
		}))
	}
	if *segment {
		opts = append(opts, jocl.WithSegmentation(jocl.SegmentOptions{
			HubDegreePercentile:   *hubPct,
			MinHubDegree:          *minHubDeg,
			MaxBlockVars:          *maxBlockVars,
			TargetBlocksPerWorker: *targetBPW,
			MaxOuterRounds:        *outerRounds,
			BoundaryTolerance:     *boundaryTol,
			NoRepair:              *noRepair,
		}))
	}
	var sess *jocl.Session
	ckptPath := ""
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal("creating checkpoint dir", err)
		}
		ckptPath = filepath.Join(*ckptDir, jocl.CheckpointFileName)
	}
	if ckptPath != "" {
		if _, statErr := os.Stat(ckptPath); statErr == nil {
			t0 := time.Now()
			sess, err = bench.RestoreSessionFile(ckptPath, opts...)
			if err != nil {
				fatal("restoring checkpoint", err)
			}
			st := sess.Stats()
			logger.Info("restored checkpoint", "path", ckptPath,
				"batches", st.Batches, "triples", st.TotalTriples,
				"restore_ms", float64(time.Since(t0).Microseconds())/1000)
		}
	}
	if sess == nil {
		if sess, err = bench.Session(opts...); err != nil {
			fatal("building session", err)
		}
	}
	srv := newServer(sess, serveOptions{
		maxBatch:        *maxBatch,
		maxBodyBytes:    *maxBody,
		checkpointPath:  ckptPath,
		checkpointEvery: *ckptEvery,
		pprof:           *pprofOn,
		logger:          logger,
		slo: telemetry.SLOConfig{
			Availability:     *sloAvail,
			LatencyObjective: *sloLatPct,
			LatencyThreshold: *sloLatThresh,
		},
	})
	logger.Info("serving", "addr", *addr, "world", bench.Name(),
		"generator_triples", len(bench.Triples), "pprof", *pprofOn)

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, let in-flight
	// ingests and queries drain, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "jocl-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		logger.Info("signal received; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fatal("shutdown", err)
		}
		// Drain the ingest queue before the final checkpoint: every batch
		// a client was told "accepted" must be committed and captured.
		if err := sess.Close(sctx); err != nil {
			logger.Error("draining ingest queue", "err", err)
		}
		if ckptPath != "" {
			if _, err := srv.writeCheckpoint(); err != nil {
				fatal("final checkpoint", err)
			}
			logger.Info("final checkpoint written", "path", ckptPath)
		}
		logger.Info("drained; bye")
	}
}

// serveOptions bundles the server's operational knobs.
type serveOptions struct {
	maxBatch     int
	maxBodyBytes int64
	// checkpointPath is the durable snapshot file ("" = durability off);
	// checkpointEvery triggers a background checkpoint every N
	// successful ingests (0 = manual/shutdown only).
	checkpointPath  string
	checkpointEvery int
	// pprof mounts net/http/pprof under /debug/pprof/; logger receives
	// the per-request structured log (nil = discard, for tests).
	pprof  bool
	logger *slog.Logger
	// slo configures the availability and latency objectives computed
	// over the jocl_http_* families (zero fields take the defaults in
	// telemetry.SLOConfig). Ignored when telemetry is disabled.
	slo telemetry.SLOConfig
}

// server wires a jocl.Session into an http.Handler. Handlers run
// concurrently; the session serializes ingests internally and serves
// snapshots from published state, so no extra locking is needed here.
// Checkpoint writes are single-flight: the periodic trigger skips a
// cycle rather than queueing behind a slow disk, and manual
// /checkpoint requests serialize on ckptMu.
type server struct {
	mux  *http.ServeMux
	sess *jocl.Session
	opt  serveOptions

	ckptMu     sync.Mutex  // serializes checkpoint writes
	ckptBusy   atomic.Bool // single-flight marker for the periodic trigger
	ckptErrors atomic.Int64

	// HTTP-layer telemetry, registered on the session's registry so
	// /metrics exposes one unified catalogue (nil when the session runs
	// with telemetry disabled — the middleware then only logs).
	reqID    atomic.Uint64
	httpReqs *telemetry.CounterVec
	httpDur  *telemetry.HistogramVec
	httpBusy *telemetry.Gauge
	// slo derives error-budget and burn-rate gauges from the families
	// above; each /metrics scrape ticks it (nil without telemetry).
	slo *telemetry.SLO
}

func newServer(sess *jocl.Session, opt serveOptions) *server {
	if opt.maxBodyBytes <= 0 {
		opt.maxBodyBytes = 8 << 20
	}
	if opt.logger == nil {
		opt.logger = slog.New(slog.DiscardHandler)
	}
	s := &server{mux: http.NewServeMux(), sess: sess, opt: opt}
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/retract", s.handleRetract)
	s.mux.HandleFunc("/result", s.handleResult)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/requests", s.handleRequests)
	s.mux.HandleFunc("/debug/watchdog", s.handleWatchdog)
	s.mux.HandleFunc("/query/resolve", s.handleQueryResolve)
	s.mux.HandleFunc("/query/entity", s.handleQueryEntity)
	s.mux.HandleFunc("/query/relation", s.handleQueryRelation)
	s.mux.HandleFunc("/query/cluster", s.handleQueryCluster)
	s.mux.HandleFunc("/query/triples", s.handleQueryTriples)
	if opt.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if tel := sess.Telemetry(); tel != nil {
		s.httpReqs = tel.Registry.CounterVec("jocl_http_requests_total",
			"HTTP requests served, by route pattern, method, and status code.",
			"path", "method", "code")
		s.httpDur = tel.Registry.HistogramVec("jocl_http_request_duration_seconds",
			"HTTP request latency by route pattern.", nil, "path")
		s.httpBusy = tel.Registry.Gauge("jocl_http_in_flight",
			"HTTP requests currently being served.")
		s.slo = telemetry.NewSLO(tel.Registry, opt.slo)
	}
	return s
}

// statusWriter captures the status code a handler wrote so the
// middleware can label metrics and logs with it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP is the observability middleware around every endpoint: it
// assigns a request id, resolves the request's trace identity (adopting
// an incoming W3C traceparent header or minting a fresh one, echoed
// back as X-Trace-Id so clients can correlate with /debug/requests),
// tracks in-flight requests, and — after the handler runs — records
// count/latency/status under the matched route pattern and emits one
// structured log line per request.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	t0 := time.Now()
	if s.httpBusy != nil {
		s.httpBusy.Add(1)
		defer s.httpBusy.Add(-1)
	}
	traceID := ""
	if s.sess.Tracer() != nil {
		sc, ok := trace.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			// Mint the trace identity here rather than at ingest so the
			// response header and log line carry it even for requests
			// that fail before reaching the session.
			sc = trace.NewSpanContext()
		}
		traceID = sc.TraceID.String()
		w.Header().Set("X-Trace-Id", traceID)
		r = r.WithContext(trace.ContextWith(r.Context(), sc))
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	// r.Pattern is only populated once the mux matched a route; label
	// everything else "unmatched" so unknown paths cannot explode the
	// series cardinality.
	pattern := r.Pattern
	if pattern == "" {
		pattern = "unmatched"
	}
	d := time.Since(t0)
	if s.httpReqs != nil {
		s.httpReqs.With(pattern, r.Method, strconv.Itoa(sw.code)).Inc()
		s.httpDur.With(pattern).ObserveDuration(d)
	}
	attrs := []any{
		"id", id, "method", r.Method, "path", r.URL.Path,
		"endpoint", pattern, "status", sw.code,
		"duration_ms", float64(d) / float64(time.Millisecond),
	}
	if traceID != "" {
		attrs = append(attrs, "trace_id", traceID)
	}
	s.opt.logger.Info("request", attrs...)
}

// handleMetrics renders every registered metric in Prometheus text
// exposition format (GET /metrics).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	tel := s.sess.Telemetry()
	if tel == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled: the session was built with WithoutTelemetry")
		return
	}
	// Scrape-driven SLO sampling: each scrape refreshes the budget and
	// burn-rate gauges (rate-limited inside Tick), so the exported
	// values are at most one scrape interval stale and no background
	// goroutine is needed.
	s.slo.Tick(time.Now())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := tel.Registry.WritePrometheus(w); err != nil {
		s.opt.logger.Error("writing /metrics", "err", err)
	}
}

type traceResponse struct {
	Traces []jocltrace `json:"traces"`
}

// jocltrace aliases the telemetry trace for JSON encoding.
type jocltrace = telemetry.Trace

// handleTrace returns the most recent per-ingest stage traces, newest
// first (GET /debug/trace, ?n= caps how many; default all retained).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	tel := s.sess.Telemetry()
	if tel == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled: the session was built with WithoutTelemetry")
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad ?n=")
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, traceResponse{Traces: tel.Traces.Last(n)})
}

type requestsResponse struct {
	// SlowThresholdMS is the tail-sampling bar in effect (negative =
	// every request trace is retained).
	SlowThresholdMS float64 `json:"slow_threshold_ms"`
	// Requests are the retained request traces, newest first; Groups
	// the retained merged-group traces the requests link to.
	Requests []trace.Finished `json:"requests"`
	Groups   []trace.Finished `json:"groups"`
}

// handleRequests serves the tail-sampled request traces (GET
// /debug/requests): slow and abnormally-terminated ingest requests with
// their full span trees, plus the merged-group traces they link to.
// ?n= caps how many of each; ?trace=<32-hex id> retrieves one specific
// trace (request or group) by id.
func (s *server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	tracer := s.sess.Tracer()
	if tracer == nil {
		httpError(w, http.StatusNotFound, "tracing disabled: the session was built with WithoutTelemetry or WithoutTracing")
		return
	}
	q := r.URL.Query()
	if raw := q.Get("trace"); raw != "" {
		id, ok := trace.ParseTraceID(raw)
		if !ok {
			httpError(w, http.StatusBadRequest, "bad ?trace=: want 32 hex characters")
			return
		}
		f, ok := tracer.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "trace not retained (not sampled, or evicted)")
			return
		}
		writeJSON(w, http.StatusOK, f)
		return
	}
	n := 0
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad ?n=")
			return
		}
		n = v
	}
	resp := requestsResponse{
		SlowThresholdMS: float64(tracer.SlowThreshold()) / float64(time.Millisecond),
		Requests:        tracer.Recent(n),
		Groups:          tracer.RecentGroups(n),
	}
	if resp.Requests == nil {
		resp.Requests = []trace.Finished{}
	}
	if resp.Groups == nil {
		resp.Groups = []trace.Finished{}
	}
	writeJSON(w, http.StatusOK, resp)
}

type watchdogResponse struct {
	Watchdog  jocl.WatchdogStatus `json:"watchdog"`
	LastStall *jocl.StallReport   `json:"last_stall,omitempty"`
}

// handleWatchdog serves the ingest pipeline's liveness accounting and,
// when a stall has been declared, the flight-recorder snapshot captured
// at that moment (GET /debug/watchdog).
func (s *server) handleWatchdog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, ok := s.sess.Watchdog()
	if !ok {
		httpError(w, http.StatusNotFound, "ingress disabled: start jocl-serve with -ingest-queue > 0")
		return
	}
	writeJSON(w, http.StatusOK, watchdogResponse{Watchdog: st, LastStall: s.sess.LastStall()})
}

type ingestRequest struct {
	Triples []tripleJSON `json:"triples"`
}

type tripleJSON struct {
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
}

type ingestResponse struct {
	Batch           int  `json:"batch"`
	BatchTriples    int  `json:"batch_triples"`
	TotalTriples    int  `json:"total_triples"`
	Refreshed       bool `json:"refreshed"`
	Components      int  `json:"components"`
	DirtyComponents int  `json:"dirty_components"`
	CleanComponents int  `json:"clean_components"`
	Sweeps          int  `json:"sweeps"`
	CutVariables    int  `json:"cut_variables,omitempty"`
	OuterRounds     int  `json:"outer_rounds,omitempty"`
	// partition_repaired / repair_blocks_* report persistent-partition
	// repair: whether this build's partition was repaired from the
	// previous one, and how many blocks that carried over vs re-cut.
	PartitionRepaired  bool    `json:"partition_repaired,omitempty"`
	RepairBlocksReused int     `json:"repair_blocks_reused,omitempty"`
	RepairBlocksRecut  int     `json:"repair_blocks_recut,omitempty"`
	PartitionMillis    float64 `json:"partition_ms"`
	ConstructMillis    float64 `json:"construct_ms"`
	InferMillis        float64 `json:"infer_ms"`
	// index_ms / index_keys report the read-path query-index
	// maintenance this batch paid (absent with -query=false);
	// index_full marks from-scratch index rebuilds.
	IndexMillis float64 `json:"index_ms,omitempty"`
	IndexKeys   int     `json:"index_keys,omitempty"`
	IndexFull   bool    `json:"index_full,omitempty"`
	// retracted / removed_* report retraction batches (POST /retract):
	// how many live triples were tombstoned and how many noun / relation
	// phrases lost their last live mention and left the graph.
	Retracted  int `json:"retracted,omitempty"`
	RemovedNPs int `json:"removed_nps,omitempty"`
	RemovedRPs int `json:"removed_rps,omitempty"`
	// coalesced_batches reports how many queued batches the session
	// ingest carrying this one merged (1 = it rode alone); when > 1 the
	// statistics above describe the whole merged ingest.
	CoalescedBatches int `json:"coalesced_batches,omitempty"`
	// trace_id identifies this request's trace (also echoed in the
	// X-Trace-Id response header): look it up at /debug/requests?trace=
	// when it was slow or failed. Absent with -trace=false.
	TraceID string `json:"trace_id,omitempty"`
}

func ingestResponseOf(st jocl.IngestStats) ingestResponse {
	return ingestResponse{
		Batch:              st.Batch,
		BatchTriples:       st.BatchTriples,
		TotalTriples:       st.TotalTriples,
		Refreshed:          st.Refreshed,
		Components:         st.Components,
		DirtyComponents:    st.DirtyComponents,
		CleanComponents:    st.CleanComponents,
		Sweeps:             st.Sweeps,
		CutVariables:       st.CutVariables,
		OuterRounds:        st.OuterRounds,
		PartitionRepaired:  st.PartitionRepaired,
		RepairBlocksReused: st.RepairBlocksReused,
		RepairBlocksRecut:  st.RepairBlocksRecut,
		PartitionMillis:    st.PartitionMillis,
		ConstructMillis:    st.ConstructMillis,
		InferMillis:        st.InferMillis,
		IndexMillis:        st.IndexMillis,
		IndexKeys:          st.IndexKeys,
		IndexFull:          st.IndexFull,
		Retracted:          st.Retracted,
		RemovedNPs:         st.RemovedNPs,
		RemovedRPs:         st.RemovedRPs,
		CoalescedBatches:   st.CoalescedBatches,
		TraceID:            st.TraceID,
	}
}

// decodeBatch bounds, decodes, and validates a {"triples": [...]} body
// — the shape /ingest and /retract share. ok=false means the error
// response has already been written.
func (s *server) decodeBatch(w http.ResponseWriter, r *http.Request) ([]jocl.Triple, bool) {
	// Bound the body before decoding: an unbounded JSON decode would let
	// one request buffer arbitrary memory. MaxBytesReader also tells the
	// HTTP server to close the connection when the limit trips.
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.maxBodyBytes)
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds -max-body-bytes (%d bytes); split the batch or raise the flag", tooBig.Limit))
			return nil, false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return nil, false
	}
	if len(req.Triples) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return nil, false
	}
	if len(req.Triples) > s.opt.maxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch of %d exceeds -max-batch %d", len(req.Triples), s.opt.maxBatch))
		return nil, false
	}
	batch := make([]jocl.Triple, len(req.Triples))
	for i, t := range req.Triples {
		if t.Subject == "" || t.Predicate == "" || t.Object == "" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("triple %d: subject, predicate, object must be non-empty", i))
			return nil, false
		}
		batch[i] = jocl.Triple{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}
	}
	return batch, true
}

// writePipelineError maps the ingest pipeline's error taxonomy —
// shared by /ingest and /retract — onto HTTP statuses.
func writePipelineError(w http.ResponseWriter, err error) {
	var over *jocl.OverloadedError
	switch {
	case errors.As(err, &over):
		// Load shed: tell the client when the backlog should have
		// drained. Retry-After is whole seconds, rounded up.
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(over.RetryAfter.Seconds()))))
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("ingest queue overloaded (depth %d); retry after %s", over.QueueDepth, over.RetryAfter))
	case errors.Is(err, jocl.ErrSessionClosed):
		httpError(w, http.StatusServiceUnavailable, "shutting down")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away while the batch was queued; it was
		// withdrawn before the session saw it. 499-style: nobody is
		// listening, but the status keeps the logs honest.
		httpError(w, http.StatusRequestTimeout, "client cancelled while queued")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	batch, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	st, err := s.sess.IngestContext(r.Context(), batch)
	if err != nil {
		writePipelineError(w, err)
		return
	}
	s.maybeCheckpoint(st.Batch)
	writeJSON(w, http.StatusOK, ingestResponseOf(st))
}

// handleRetract tombstones every live triple matching a batch member by
// (subject, predicate, object) and re-infers without the retracted
// evidence (POST /retract). The body shape, size bounds, and overload
// behaviour match /ingest; a batch matching no live triple at all is a
// 404 with no side effects.
func (s *server) handleRetract(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	batch, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	st, err := s.sess.RetractContext(r.Context(), batch)
	if err != nil {
		if errors.Is(err, jocl.ErrRetractNoMatch) {
			httpError(w, http.StatusNotFound, "retraction matched no live triples; session state unchanged")
			return
		}
		writePipelineError(w, err)
		return
	}
	s.maybeCheckpoint(st.Batch)
	writeJSON(w, http.StatusOK, ingestResponseOf(st))
}

// maybeCheckpoint fires the periodic background checkpoint after every
// checkpointEvery-th successful ingest. The write runs in its own
// goroutine — the session's checkpoint capture holds the ingest lock
// only briefly, so the ingest path never waits on serialization or
// disk — and is single-flight: if the previous write is still running,
// this cycle is skipped rather than queued.
func (s *server) maybeCheckpoint(batch int) {
	if s.opt.checkpointPath == "" || s.opt.checkpointEvery <= 0 || batch%s.opt.checkpointEvery != 0 {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptBusy.Store(false)
		if resp, err := s.writeCheckpoint(); err != nil {
			s.ckptErrors.Add(1)
			s.opt.logger.Error("background checkpoint", "err", err)
		} else {
			s.opt.logger.Info("checkpoint written", "path", resp.Path,
				"batches", resp.Batches, "write_ms", resp.WriteMS)
		}
	}()
}

type checkpointResponse struct {
	Path    string  `json:"path"`
	Bytes   int64   `json:"bytes"`
	Batches int     `json:"batches"`
	Triples int     `json:"triples"`
	WriteMS float64 `json:"write_ms"`
}

// writeCheckpoint persists the session atomically to the configured
// path. The returned response describes the snapshot that was actually
// written (its batch/triple counts and on-disk size, all taken under
// ckptMu), not the session's possibly newer state.
func (s *server) writeCheckpoint() (checkpointResponse, error) {
	if s.opt.checkpointPath == "" {
		return checkpointResponse{}, fmt.Errorf("no -checkpoint-dir configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	t0 := time.Now()
	info, err := s.sess.CheckpointFile(s.opt.checkpointPath)
	if err != nil {
		return checkpointResponse{}, err
	}
	return checkpointResponse{
		Path:    s.opt.checkpointPath,
		Bytes:   info.Bytes,
		Batches: info.Batches,
		Triples: info.Triples,
		WriteMS: float64(time.Since(t0).Microseconds()) / 1000,
	}, nil
}

// handleCheckpoint forces a durable snapshot now (POST /checkpoint).
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.opt.checkpointPath == "" {
		httpError(w, http.StatusBadRequest, "checkpointing disabled: start jocl-serve with -checkpoint-dir")
		return
	}
	resp, err := s.writeCheckpoint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "writing checkpoint: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type resultResponse struct {
	NPGroups      [][]string        `json:"np_groups"`
	RPGroups      [][]string        `json:"rp_groups"`
	EntityLinks   map[string]string `json:"entity_links"`
	RelationLinks map[string]string `json:"relation_links"`
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	res := s.sess.Snapshot()
	if res == nil {
		httpError(w, http.StatusNotFound, "no result yet: POST /ingest first")
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{
		NPGroups:      res.NPGroups,
		RPGroups:      res.RPGroups,
		EntityLinks:   res.EntityLinks,
		RelationLinks: res.RelationLinks,
	})
}

type statsResponse struct {
	Batches            int `json:"batches"`
	TotalTriples       int `json:"total_triples"`
	NounPhrases        int `json:"noun_phrases"`
	RelPhrases         int `json:"relation_phrases"`
	Refreshes          int `json:"refreshes"`
	CachedSignals      int `json:"cached_signals"`
	BlocksTouched      int `json:"blocks_touched"`
	BlocksServedWarm   int `json:"blocks_served_warm"`
	CutVariables       int `json:"cut_variables"`
	PartitionRepairs   int `json:"partition_repairs"`
	RepairBlocksReused int `json:"repair_blocks_reused"`
	// retractions / dead_triples surface the update path: committed
	// retraction batches and the live triples they tombstoned (total_
	// triples counts live triples only).
	Retractions int `json:"retractions,omitempty"`
	DeadTriples int `json:"dead_triples,omitempty"`
	// query_* surface the read-path index: whether it is on, its
	// current generation and overlay depth, the cumulative maintenance
	// wall-clock, and the configured limits. query_retained lists the
	// generations still answerable via ?as_of=, oldest first.
	QueryEnabled    bool    `json:"query_enabled"`
	QueryGeneration int64   `json:"query_generation,omitempty"`
	QueryLayers     int     `json:"query_layers,omitempty"`
	QueryIndexMS    float64 `json:"query_index_ms,omitempty"`
	QueryMaxResults int     `json:"query_max_results,omitempty"`
	QueryRetained   []int64 `json:"query_retained,omitempty"`
	// ingress surfaces the async ingest queue's counters (absent with
	// -ingest-queue 0).
	Ingress    *ingressStatsJSON `json:"ingress,omitempty"`
	LastIngest *ingestResponse   `json:"last_ingest,omitempty"`
}

type ingressStatsJSON struct {
	QueueDepth       int     `json:"queue_depth"`
	Submitted        uint64  `json:"submitted"`
	Shed             uint64  `json:"shed"`
	Cancelled        uint64  `json:"cancelled"`
	MergedIngests    uint64  `json:"merged_ingests"`
	CoalescedBatches uint64  `json:"coalesced_batches"`
	Splits           uint64  `json:"splits"`
	CoalescingFactor float64 `json:"coalescing_factor"`
	// queue_oldest_age_ms / queue_oldest_enqueued report the oldest
	// still-queued submission — the head-of-line wait a new submission
	// is behind. Absent when the queue is empty.
	QueueOldestAgeMS    float64    `json:"queue_oldest_age_ms,omitempty"`
	QueueOldestEnqueued *time.Time `json:"queue_oldest_enqueued,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.sess.Stats()
	resp := statsResponse{
		Batches:            st.Batches,
		TotalTriples:       st.TotalTriples,
		NounPhrases:        st.NounPhrases,
		RelPhrases:         st.RelPhrases,
		Refreshes:          st.Refreshes,
		CachedSignals:      st.CachedSignals,
		BlocksTouched:      st.BlocksTouched,
		BlocksServedWarm:   st.BlocksServedWarm,
		CutVariables:       st.CutVariables,
		PartitionRepairs:   st.PartitionRepairs,
		RepairBlocksReused: st.RepairBlocksReused,
		Retractions:        st.Retractions,
		DeadTriples:        st.DeadTriples,
		QueryEnabled:       st.QueryEnabled,
		QueryGeneration:    st.QueryGeneration,
		QueryLayers:        st.QueryLayers,
		QueryIndexMS:       st.QueryIndexMillis,
		QueryMaxResults:    st.QueryMaxResults,
		QueryRetained:      st.QueryRetained,
	}
	if in, ok := s.sess.IngressStats(); ok {
		resp.Ingress = &ingressStatsJSON{
			QueueDepth:       in.QueueDepth,
			Submitted:        in.Submitted,
			Shed:             in.Shed,
			Cancelled:        in.Cancelled,
			MergedIngests:    in.MergedIngests,
			CoalescedBatches: in.CoalescedBatches,
			Splits:           in.Splits,
			CoalescingFactor: in.CoalescingFactor(),
		}
		if !in.QueueOldestEnqueued.IsZero() {
			enq := in.QueueOldestEnqueued
			resp.Ingress.QueueOldestEnqueued = &enq
			resp.Ingress.QueueOldestAgeMS = float64(in.QueueOldestAge) / float64(time.Millisecond)
		}
	}
	if li := st.LastIngest; li != nil {
		r := ingestResponseOf(*li)
		resp.LastIngest = &r
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness unconditionally: the listener only
// starts after the KB is generated and the session built, so reaching
// this handler at all means the service is ready.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// The /query/* handlers below serve reads from the session's
// incrementally-maintained index: lock-free snapshot lookups that run
// concurrently with /ingest and never wait behind it. ok=false from
// the session uniformly means "nothing to answer": index disabled,
// nothing ingested yet, or unknown key — a 404 either way.

type queryGenJSON struct {
	Generation int64 `json:"generation"`
	Triples    int   `json:"triples"`
	Behind     int   `json:"behind"`
}

func genJSON(g jocl.QueryGen) queryGenJSON {
	return queryGenJSON{Generation: g.Generation, Triples: g.Triples, Behind: g.Behind}
}

// asOfQuery parses the optional ?as_of= parameter every /query/*
// endpoint accepts: answer from that retained generation instead of the
// newest one. ok=false means a 400 was already written; asOf reports
// whether the parameter was present, so a later miss can name the
// retention window as the likely cause.
func asOfQuery(w http.ResponseWriter, r *http.Request) (opts []jocl.QueryOpt, asOf, ok bool) {
	raw := r.URL.Query().Get("as_of")
	if raw == "" {
		return nil, false, true
	}
	gen, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || gen < 1 {
		httpError(w, http.StatusBadRequest, "bad ?as_of=: want a positive generation number")
		return nil, false, false
	}
	return []jocl.QueryOpt{jocl.AsOf(gen)}, true, true
}

// queryNotFound answers a /query/* miss, pointing at the retention
// window when the request asked for a specific generation.
func queryNotFound(w http.ResponseWriter, asOf bool, what string) {
	if asOf {
		what += "; or the ?as_of= generation is no longer retained (query_retained in /stats lists the window, -retain-generations widens it)"
	}
	httpError(w, http.StatusNotFound, what)
}

// setGeneration stamps the index generation the answer was served from
// onto the response, so clients can pin follow-up reads with ?as_of=.
func setGeneration(w http.ResponseWriter, g jocl.QueryGen) {
	w.Header().Set("X-Jocl-Generation", strconv.FormatInt(g.Generation, 10))
}

type resolveResponse struct {
	Surface     string       `json:"surface"`
	Canonical   string       `json:"canonical"`
	Target      string       `json:"target,omitempty"`
	ClusterSize int          `json:"cluster_size"`
	Gen         queryGenJSON `json:"gen"`
}

func (s *server) handleQueryResolve(w http.ResponseWriter, r *http.Request) {
	np, rp, ok := queryKind(w, r)
	if !ok {
		return
	}
	opts, asOf, ok := asOfQuery(w, r)
	if !ok {
		return
	}
	var res jocl.Resolution
	var found bool
	if np != "" {
		res, found = s.sess.QueryEntity(np, opts...)
	} else {
		res, found = s.sess.QueryRelation(rp, opts...)
	}
	if !found {
		queryNotFound(w, asOf, "unknown surface (or query index disabled / nothing ingested)")
		return
	}
	setGeneration(w, res.Gen)
	writeJSON(w, http.StatusOK, resolveResponse{
		Surface:     res.Surface,
		Canonical:   res.Canonical,
		Target:      res.Target,
		ClusterSize: res.ClusterSize,
		Gen:         genJSON(res.Gen),
	})
}

type aliasesResponse struct {
	Target  string       `json:"target"`
	Aliases []string     `json:"aliases"`
	Gen     queryGenJSON `json:"gen"`
}

func (s *server) handleQueryEntity(w http.ResponseWriter, r *http.Request) {
	s.handleAliases(w, r, s.sess.QueryEntityAliases)
}

func (s *server) handleQueryRelation(w http.ResponseWriter, r *http.Request) {
	s.handleAliases(w, r, s.sess.QueryRelationAliases)
}

func (s *server) handleAliases(w http.ResponseWriter, r *http.Request, lookup func(string, ...jocl.QueryOpt) (jocl.AliasSet, bool)) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing ?id=")
		return
	}
	opts, asOf, ok := asOfQuery(w, r)
	if !ok {
		return
	}
	a, found := lookup(id, opts...)
	if !found {
		queryNotFound(w, asOf, "unknown id (or query index disabled / nothing ingested)")
		return
	}
	setGeneration(w, a.Gen)
	writeJSON(w, http.StatusOK, aliasesResponse{Target: a.Target, Aliases: a.Aliases, Gen: genJSON(a.Gen)})
}

type clusterResponse struct {
	Canonical string       `json:"canonical"`
	Members   []string     `json:"members"`
	Gen       queryGenJSON `json:"gen"`
}

func (s *server) handleQueryCluster(w http.ResponseWriter, r *http.Request) {
	np, rp, ok := queryKind(w, r)
	if !ok {
		return
	}
	opts, asOf, ok := asOfQuery(w, r)
	if !ok {
		return
	}
	var c jocl.ClusterView
	var found bool
	if np != "" {
		c, found = s.sess.QueryEntityCluster(np, opts...)
	} else {
		c, found = s.sess.QueryRelationCluster(rp, opts...)
	}
	if !found {
		queryNotFound(w, asOf, "unknown surface (or query index disabled / nothing ingested)")
		return
	}
	setGeneration(w, c.Gen)
	writeJSON(w, http.StatusOK, clusterResponse{Canonical: c.Canonical, Members: c.Members, Gen: genJSON(c.Gen)})
}

type triplesResponse struct {
	Triples   []tripleJSON `json:"triples"`
	Total     int          `json:"total"`
	Truncated bool         `json:"truncated,omitempty"`
	Gen       queryGenJSON `json:"gen"`
}

func (s *server) handleQueryTriples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	subject, relation := q.Get("subject"), q.Get("relation")
	if (subject == "") == (relation == "") {
		httpError(w, http.StatusBadRequest, "exactly one of ?subject= or ?relation= required")
		return
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad ?limit=")
			return
		}
		limit = n
	}
	opts, asOf, ok := asOfQuery(w, r)
	if !ok {
		return
	}
	var ts jocl.TripleSet
	var found bool
	if subject != "" {
		ts, found = s.sess.QueryTriplesBySubject(subject, limit, opts...)
	} else {
		ts, found = s.sess.QueryTriplesByRelation(relation, limit, opts...)
	}
	if !found {
		queryNotFound(w, asOf, "unknown surface (or query index disabled / nothing ingested)")
		return
	}
	setGeneration(w, ts.Gen)
	resp := triplesResponse{Total: ts.Total, Truncated: ts.Truncated, Gen: genJSON(ts.Gen)}
	resp.Triples = make([]tripleJSON, len(ts.Triples))
	for i, t := range ts.Triples {
		resp.Triples[i] = tripleJSON{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryKind validates a GET with exactly one of ?np= / ?rp= and
// returns the populated one.
func queryKind(w http.ResponseWriter, r *http.Request) (np, rp string, ok bool) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return "", "", false
	}
	q := r.URL.Query()
	np, rp = q.Get("np"), q.Get("rp")
	if (np == "") == (rp == "") {
		httpError(w, http.StatusBadRequest, "exactly one of ?np= or ?rp= required")
		return "", "", false
	}
	return np, rp, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encoding response", "err", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
