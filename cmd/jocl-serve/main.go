// Command jocl-serve exposes a streaming JOCL session over HTTP: an
// online canonicalization-and-linking service that accepts OIE triple
// batches as they are extracted and keeps a continuously updated joint
// result, re-running inference only on the parts of the factor graph
// each batch touches.
//
// Usage:
//
//	jocl-serve [-addr :8080] [-profile reverb45k] [-scale 0.02]
//	           [-workers 0] [-refresh-every 0] [-max-batch 10000]
//	           [-segment] [-hub-percentile 0.99] [-min-hub-degree 8]
//	           [-max-block-vars 0] [-target-blocks-per-worker 4]
//	           [-outer-rounds 4] [-boundary-tol 0.005] [-no-repair]
//
// -segment enables hub-cut graph segmentation: the highest-degree
// variables (popular phrases that fuse the factor graph into one giant
// component) are cut out of the inference blocks with frozen boundary
// messages, so each ingest re-runs belief propagation only on the
// small blocks it touched; the remaining flags tune the cut threshold
// and the frozen-boundary outer loop. The partition persists across
// rebuilds: each ingest repairs the previous build's cut set (blocks
// whose degree profile is unchanged are carried over verbatim, warm
// state included) unless -no-repair re-derives it per build, and an
// unset -max-block-vars is auto-tuned toward -target-blocks-per-worker
// blocks per inference worker.
//
// The curated KB and frozen signal resources come from the synthetic
// benchmark generator (the same substrate the rest of the repo
// evaluates on); -profile/-scale pick the world. Endpoints:
//
//	POST /ingest   {"triples": [{"subject": s, "predicate": p, "object": o}, ...]}
//	               -> per-batch ingest statistics (dirty components, sweeps, ms)
//	GET  /result   -> current canonicalization groups and KB links
//	GET  /stats    -> cumulative session statistics
//	GET  /healthz  -> liveness (200 once the KB is loaded)
//
// Example:
//
//	curl -s localhost:8080/ingest -d '{"triples":[{"subject":"barack obama","predicate":"be born in","object":"honolulu"}]}'
//	curl -s localhost:8080/result | jq .entity_links
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		profile      = flag.String("profile", "reverb45k", "benchmark profile backing the KB (reverb45k | nytimes2018)")
		scale        = flag.Float64("scale", 0.02, "fraction of the paper's data set size for the generated KB")
		workers      = flag.Int("workers", 0, "inference worker pool (0 = GOMAXPROCS)")
		refreshEvery = flag.Int("refresh-every", 0, "rebuild frozen signal statistics every N batches (0 = never)")
		maxBatch     = flag.Int("max-batch", 10000, "largest accepted ingest batch")
		segment      = flag.Bool("segment", false, "enable hub-cut graph segmentation")
		hubPct       = flag.Float64("hub-percentile", 0, "segmentation: degree percentile above which variables are cut (0 = default 0.99)")
		minHubDeg    = flag.Int("min-hub-degree", 0, "segmentation: absolute degree floor for cutting (0 = default 8)")
		maxBlockVars = flag.Int("max-block-vars", 0, "segmentation: size cap on inference blocks (0 = auto-tune, negative disables)")
		targetBPW    = flag.Int("target-blocks-per-worker", 0, "segmentation: blocks-per-worker ratio the auto-tuned size cap aims for (0 = default 4)")
		outerRounds  = flag.Int("outer-rounds", 0, "segmentation: max frozen-boundary outer rounds per ingest (0 = default 4)")
		boundaryTol  = flag.Float64("boundary-tol", 0, "segmentation: cut-belief convergence tolerance between rounds (0 = default 0.005)")
		noRepair     = flag.Bool("no-repair", false, "segmentation: re-derive the partition per rebuild instead of repairing the previous one")
	)
	flag.Parse()

	log.Printf("generating %s KB at scale %g ...", *profile, *scale)
	bench, err := jocl.GenerateBenchmark(*profile, *scale)
	if err != nil {
		log.Fatal("jocl-serve: ", err)
	}
	opts := []jocl.Option{jocl.WithWorkers(*workers), jocl.WithRefreshEvery(*refreshEvery)}
	if *segment {
		opts = append(opts, jocl.WithSegmentation(jocl.SegmentOptions{
			HubDegreePercentile:   *hubPct,
			MinHubDegree:          *minHubDeg,
			MaxBlockVars:          *maxBlockVars,
			TargetBlocksPerWorker: *targetBPW,
			MaxOuterRounds:        *outerRounds,
			BoundaryTolerance:     *boundaryTol,
			NoRepair:              *noRepair,
		}))
	}
	sess, err := bench.Session(opts...)
	if err != nil {
		log.Fatal("jocl-serve: ", err)
	}
	srv := newServer(sess, *maxBatch)
	log.Printf("serving on %s (%s world, %d generator triples available)", *addr, bench.Name(), len(bench.Triples))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "jocl-serve:", err)
		os.Exit(1)
	}
}

// server wires a jocl.Session into an http.Handler. Handlers run
// concurrently; the session serializes ingests internally and serves
// snapshots from published state, so no extra locking is needed here.
type server struct {
	mux      *http.ServeMux
	sess     *jocl.Session
	maxBatch int
}

func newServer(sess *jocl.Session, maxBatch int) *server {
	s := &server{mux: http.NewServeMux(), sess: sess, maxBatch: maxBatch}
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/result", s.handleResult)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type ingestRequest struct {
	Triples []tripleJSON `json:"triples"`
}

type tripleJSON struct {
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
}

type ingestResponse struct {
	Batch           int  `json:"batch"`
	BatchTriples    int  `json:"batch_triples"`
	TotalTriples    int  `json:"total_triples"`
	Refreshed       bool `json:"refreshed"`
	Components      int  `json:"components"`
	DirtyComponents int  `json:"dirty_components"`
	CleanComponents int  `json:"clean_components"`
	Sweeps          int  `json:"sweeps"`
	CutVariables    int  `json:"cut_variables,omitempty"`
	OuterRounds     int  `json:"outer_rounds,omitempty"`
	// partition_repaired / repair_blocks_* report persistent-partition
	// repair: whether this build's partition was repaired from the
	// previous one, and how many blocks that carried over vs re-cut.
	PartitionRepaired  bool    `json:"partition_repaired,omitempty"`
	RepairBlocksReused int     `json:"repair_blocks_reused,omitempty"`
	RepairBlocksRecut  int     `json:"repair_blocks_recut,omitempty"`
	PartitionMillis    float64 `json:"partition_ms"`
	ConstructMillis    float64 `json:"construct_ms"`
	InferMillis        float64 `json:"infer_ms"`
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Triples) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Triples) > s.maxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch of %d exceeds -max-batch %d", len(req.Triples), s.maxBatch))
		return
	}
	batch := make([]jocl.Triple, len(req.Triples))
	for i, t := range req.Triples {
		if t.Subject == "" || t.Predicate == "" || t.Object == "" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("triple %d: subject, predicate, object must be non-empty", i))
			return
		}
		batch[i] = jocl.Triple{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}
	}
	st, err := s.sess.Ingest(batch)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Batch:              st.Batch,
		BatchTriples:       st.BatchTriples,
		TotalTriples:       st.TotalTriples,
		Refreshed:          st.Refreshed,
		Components:         st.Components,
		DirtyComponents:    st.DirtyComponents,
		CleanComponents:    st.CleanComponents,
		Sweeps:             st.Sweeps,
		CutVariables:       st.CutVariables,
		OuterRounds:        st.OuterRounds,
		PartitionRepaired:  st.PartitionRepaired,
		RepairBlocksReused: st.RepairBlocksReused,
		RepairBlocksRecut:  st.RepairBlocksRecut,
		PartitionMillis:    st.PartitionMillis,
		ConstructMillis:    st.ConstructMillis,
		InferMillis:        st.InferMillis,
	})
}

type resultResponse struct {
	NPGroups      [][]string        `json:"np_groups"`
	RPGroups      [][]string        `json:"rp_groups"`
	EntityLinks   map[string]string `json:"entity_links"`
	RelationLinks map[string]string `json:"relation_links"`
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	res := s.sess.Snapshot()
	if res == nil {
		httpError(w, http.StatusNotFound, "no result yet: POST /ingest first")
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{
		NPGroups:      res.NPGroups,
		RPGroups:      res.RPGroups,
		EntityLinks:   res.EntityLinks,
		RelationLinks: res.RelationLinks,
	})
}

type statsResponse struct {
	Batches            int             `json:"batches"`
	TotalTriples       int             `json:"total_triples"`
	NounPhrases        int             `json:"noun_phrases"`
	RelPhrases         int             `json:"relation_phrases"`
	Refreshes          int             `json:"refreshes"`
	CachedSignals      int             `json:"cached_signals"`
	BlocksTouched      int             `json:"blocks_touched"`
	BlocksServedWarm   int             `json:"blocks_served_warm"`
	CutVariables       int             `json:"cut_variables"`
	PartitionRepairs   int             `json:"partition_repairs"`
	RepairBlocksReused int             `json:"repair_blocks_reused"`
	LastIngest         *ingestResponse `json:"last_ingest,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.sess.Stats()
	resp := statsResponse{
		Batches:            st.Batches,
		TotalTriples:       st.TotalTriples,
		NounPhrases:        st.NounPhrases,
		RelPhrases:         st.RelPhrases,
		Refreshes:          st.Refreshes,
		CachedSignals:      st.CachedSignals,
		BlocksTouched:      st.BlocksTouched,
		BlocksServedWarm:   st.BlocksServedWarm,
		CutVariables:       st.CutVariables,
		PartitionRepairs:   st.PartitionRepairs,
		RepairBlocksReused: st.RepairBlocksReused,
	}
	if li := st.LastIngest; li != nil {
		resp.LastIngest = &ingestResponse{
			Batch:              li.Batch,
			BatchTriples:       li.BatchTriples,
			TotalTriples:       li.TotalTriples,
			Refreshed:          li.Refreshed,
			Components:         li.Components,
			DirtyComponents:    li.DirtyComponents,
			CleanComponents:    li.CleanComponents,
			Sweeps:             li.Sweeps,
			CutVariables:       li.CutVariables,
			OuterRounds:        li.OuterRounds,
			PartitionRepaired:  li.PartitionRepaired,
			RepairBlocksReused: li.RepairBlocksReused,
			RepairBlocksRecut:  li.RepairBlocksRecut,
			PartitionMillis:    li.PartitionMillis,
			ConstructMillis:    li.ConstructMillis,
			InferMillis:        li.InferMillis,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness unconditionally: the listener only
// starts after the KB is generated and the session built, so reaching
// this handler at all means the service is ready.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("jocl-serve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
