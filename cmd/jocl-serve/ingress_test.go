package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
)

// The tests below drive the server with the async ingress queue
// enabled (the -ingest-queue path). They use the pipeline's own
// control points — a long coalesce window holds a group open until a
// sealing batch arrives, and a large epoch batch keeps the preparer
// busy long enough to observe queued state — so every scenario is
// deterministic rather than a timing lottery.

func ingressServer(t *testing.T, in jocl.IngressOptions, extra ...jocl.Option) (*server, *jocl.Session) {
	t.Helper()
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session(append([]jocl.Option{jocl.WithIngress(in)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sess.Close(ctx); err != nil {
			t.Errorf("closing ingress session: %v", err)
		}
	})
	return newServer(sess, serveOptions{maxBatch: 1000}), sess
}

// pollStats GETs /stats until cond accepts the response or the
// deadline passes.
func pollStats(t *testing.T, srv *server, what string, cond func(statsResponse) bool) statsResponse {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var st statsResponse
	for {
		st = statsResponse{}
		getJSON(t, srv, "/stats", &st)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last stats: %+v (ingress %+v)", what, st, st.Ingress)
		}
		time.Sleep(time.Millisecond)
	}
}

// asyncIngest fires one POST /ingest in the background and returns a
// channel carrying the recorder once the handler finishes.
func asyncIngest(srv *server, ctx context.Context, triples []tripleJSON) chan *httptest.ResponseRecorder {
	out := make(chan *httptest.ResponseRecorder, 1)
	body, _ := json.Marshal(ingestRequest{Triples: triples})
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		out <- rec
	}()
	return out
}

func oneTriple(i int) []tripleJSON {
	return []tripleJSON{{
		Subject:   fmt.Sprintf("holding %d", i),
		Predicate: "acquire",
		Object:    fmt.Sprintf("subsidiary %d", i),
	}}
}

// TestServeIngressCoalescesAndCountsInFlight holds a coalesce group
// open with a long window, parks three ingests in it, and proves (a)
// jocl_http_in_flight counts queued-but-unstarted ingests — the
// session has committed nothing while the gauge reads them — and (b)
// the sealing fourth batch rides the same merged ingest, reported via
// coalesced_batches on every response and the ingress block of
// /stats.
func TestServeIngressCoalescesAndCountsInFlight(t *testing.T) {
	srv, _ := ingressServer(t, jocl.IngressOptions{
		QueueDepth:     8,
		CoalesceDepth:  4,
		CoalesceWindow: time.Minute,
	})

	var waiting []chan *httptest.ResponseRecorder
	for i := 0; i < 3; i++ {
		waiting = append(waiting, asyncIngest(srv, nil, oneTriple(i)))
	}

	// The gauge must reach 4: the three parked ingests plus the
	// /metrics scrape reading it. Nothing may commit while they wait.
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, body := scrapeFamilies(t, srv)
		if strings.Contains(body, "jocl_http_in_flight 4\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge never saw the queued ingests:\n%s", grepLines(body, "jocl_http_in_flight"))
		}
		time.Sleep(time.Millisecond)
	}
	if st := pollStats(t, srv, "stats while ingests parked", func(statsResponse) bool { return true }); st.Batches != 0 {
		t.Fatalf("session committed %d batches while all ingests were queued", st.Batches)
	}

	// The fourth batch fills the group to CoalesceDepth and seals it.
	rec, ing := postIngest(t, srv, oneTriple(3))
	if rec.Code != http.StatusOK {
		t.Fatalf("sealing ingest = %d: %s", rec.Code, rec.Body)
	}
	if ing.CoalescedBatches != 4 {
		t.Errorf("sealing ingest coalesced_batches = %d, want 4", ing.CoalescedBatches)
	}
	for i, ch := range waiting {
		rec := <-ch
		if rec.Code != http.StatusOK {
			t.Fatalf("parked ingest %d = %d: %s", i, rec.Code, rec.Body)
		}
		var resp ingestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.CoalescedBatches != 4 {
			t.Errorf("parked ingest %d coalesced_batches = %d, want 4", i, resp.CoalescedBatches)
		}
	}

	var st statsResponse
	getJSON(t, srv, "/stats", &st)
	if st.Batches != 1 || st.TotalTriples != 4 {
		t.Errorf("after coalesced ingest: batches=%d triples=%d, want 1/4", st.Batches, st.TotalTriples)
	}
	in := st.Ingress
	if in == nil {
		t.Fatal("/stats misses the ingress block with -ingest-queue on")
	}
	if in.Submitted != 4 || in.MergedIngests != 1 || in.CoalescedBatches != 4 || in.CoalescingFactor != 4 {
		t.Errorf("ingress stats: %+v, want submitted=4 merged=1 coalesced=4 factor=4", in)
	}

	// The ingress metric families are on /metrics alongside the rest.
	fams, body := scrapeFamilies(t, srv)
	for name, kind := range map[string]string{
		"jocl_ingress_queue_depth":             "gauge",
		"jocl_ingress_submitted_total":         "counter",
		"jocl_ingress_shed_total":              "counter",
		"jocl_ingress_cancelled_total":         "counter",
		"jocl_ingress_merged_ingests_total":    "counter",
		"jocl_ingress_coalesced_batches_total": "counter",
		"jocl_ingress_splits_total":            "counter",
		"jocl_ingress_coalesce_batches":        "histogram",
		"jocl_ingress_queue_wait_seconds":      "histogram",
	} {
		if got, ok := fams[name]; !ok {
			t.Errorf("metric %s missing from /metrics", name)
		} else if got != kind {
			t.Errorf("metric %s has type %s, want %s", name, got, kind)
		}
	}
	for _, want := range []string{
		"jocl_ingress_merged_ingests_total 1",
		"jocl_ingress_coalesced_batches_total 4",
		"jocl_ingress_submitted_total 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q:\n%s", want, grepLines(body, "jocl_ingress"))
		}
	}
}

// bigBatch builds n distinct synthetic triples: enough fresh noun and
// relation phrases that the epoch ingest carrying them keeps the
// preparer busy for a macroscopic stretch.
func bigBatch(tag string, n int) []tripleJSON {
	out := make([]tripleJSON, n)
	for i := range out {
		out[i] = tripleJSON{
			Subject:   fmt.Sprintf("%s conglomerate %d", tag, i),
			Predicate: "take over",
			Object:    fmt.Sprintf("%s venture %d", tag, i),
		}
	}
	return out
}

// TestServeOverloadShedsAndCancelsQueued wedges the preparer with a
// large two-batch epoch merge, stacks the queue to its high-water
// mark, and proves the HTTP mappings: a submission past the mark gets
// 429 with a sane Retry-After header, a client that disconnects while
// queued gets 408 and its batch never reaches the session, and the
// accepted work all lands.
func TestServeOverloadShedsAndCancelsQueued(t *testing.T) {
	srv, _ := ingressServer(t, jocl.IngressOptions{
		QueueDepth:     4,
		CoalesceDepth:  2,
		CoalesceWindow: time.Minute,
		ShedDepth:      2,
	})

	// Two 400-triple batches coalesce into the epoch ingest; while it
	// prepares, the preparer cannot claim anything else.
	a := asyncIngest(srv, nil, bigBatch("alpha", 400))
	b := asyncIngest(srv, nil, bigBatch("beta", 400))
	pollStats(t, srv, "epoch merge sealed", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.Submitted == 2 && st.Ingress.QueueDepth == 0 && st.Batches == 0
	})

	// Queue two singles behind the wedge: the second reaches the
	// ShedDepth=2 high-water mark.
	cctx, cancelC := context.WithCancel(context.Background())
	defer cancelC()
	c := asyncIngest(srv, cctx, oneTriple(100))
	pollStats(t, srv, "first single queued", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.QueueDepth == 1
	})
	d := asyncIngest(srv, nil, oneTriple(101))
	pollStats(t, srv, "second single queued", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.QueueDepth == 2
	})

	// At the high-water mark a fresh submission is shed.
	rec, _ := postIngest(t, srv, oneTriple(102))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submission past high-water = %d, want 429: %s", rec.Code, rec.Body)
	}
	ra := rec.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After = %q, want an integer in [1,30]", ra)
	}

	// A client cancelling while queued is withdrawn before the session
	// sees its batch.
	cancelC()
	if rec := <-c; rec.Code != http.StatusRequestTimeout {
		t.Fatalf("cancelled-while-queued ingest = %d, want 408: %s", rec.Code, rec.Body)
	}

	// The epoch merge lands for both members.
	for name, ch := range map[string]chan *httptest.ResponseRecorder{"alpha": a, "beta": b} {
		rec := <-ch
		if rec.Code != http.StatusOK {
			t.Fatalf("%s epoch batch = %d: %s", name, rec.Code, rec.Body)
		}
		var resp ingestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.CoalescedBatches != 2 {
			t.Errorf("%s epoch batch coalesced_batches = %d, want 2", name, resp.CoalescedBatches)
		}
	}

	// The surviving single is now the lead of an open group; a sealing
	// partner lets it commit. Wait for the queue to drain first so the
	// sealer is not itself shed against the stale backlog.
	pollStats(t, srv, "queue drained after epoch", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.QueueDepth == 0 && st.Batches == 1
	})
	rec, ing := postIngest(t, srv, oneTriple(103))
	if rec.Code != http.StatusOK {
		t.Fatalf("sealing ingest = %d: %s", rec.Code, rec.Body)
	}
	if ing.CoalescedBatches != 2 {
		t.Errorf("sealing ingest coalesced_batches = %d, want 2", ing.CoalescedBatches)
	}
	if rec := <-d; rec.Code != http.StatusOK {
		t.Fatalf("queued single = %d: %s", rec.Code, rec.Body)
	}

	st := pollStats(t, srv, "final state", func(st statsResponse) bool {
		return st.Batches == 2
	})
	if st.TotalTriples != 802 {
		t.Errorf("total triples = %d, want 802 (the cancelled and shed batches must not land)", st.TotalTriples)
	}
	in := st.Ingress
	if in.Submitted != 5 || in.Shed != 1 || in.Cancelled != 1 || in.MergedIngests != 2 || in.CoalescedBatches != 4 || in.Splits != 0 {
		t.Errorf("ingress counters: %+v, want submitted=5 shed=1 cancelled=1 merged=2 coalesced=4 splits=0", in)
	}
	_, body := scrapeFamilies(t, srv)
	for _, want := range []string{
		"jocl_ingress_shed_total 1",
		"jocl_ingress_cancelled_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q:\n%s", want, grepLines(body, "jocl_ingress"))
		}
	}
}

// TestServeClosedSessionReturns503 proves the shutdown path: once the
// session's ingress pipeline is closed, /ingest answers 503 instead
// of hanging or crashing, while the read path stays up.
func TestServeClosedSessionReturns503(t *testing.T) {
	srv, sess := ingressServer(t, jocl.IngressOptions{QueueDepth: 4})
	if rec, _ := postIngest(t, srv, oneTriple(0)); rec.Code != http.StatusOK {
		t.Fatalf("ingest before close = %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	rec, _ := postIngest(t, srv, oneTriple(1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("ingest after close = %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec := getJSON(t, srv, "/stats", nil); rec.Code != http.StatusOK {
		t.Errorf("/stats after close = %d", rec.Code)
	}
}
