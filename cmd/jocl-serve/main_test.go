package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro"
)

func testServer(t *testing.T) *server {
	t.Helper()
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	return newServer(sess, 1000)
}

func postIngest(t *testing.T, srv http.Handler, triples []tripleJSON) (*httptest.ResponseRecorder, ingestResponse) {
	t.Helper()
	body, _ := json.Marshal(ingestRequest{Triples: triples})
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var resp ingestResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad ingest response: %v", err)
		}
	}
	return rec, resp
}

func TestServeLifecycle(t *testing.T) {
	srv := testServer(t)

	// Healthy before any data.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}

	// No result yet.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/result", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/result before ingest = %d, want 404", rec.Code)
	}

	rec, ing := postIngest(t, srv, []tripleJSON{
		{Subject: "barack obama", Predicate: "be born in", Object: "honolulu"},
		{Subject: "obama", Predicate: "serve as", Object: "president"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rec.Code, rec.Body)
	}
	if ing.Batch != 1 || !ing.Refreshed || ing.TotalTriples != 2 {
		t.Errorf("unexpected first ingest stats: %+v", ing)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/result", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/result = %d", rec.Code)
	}
	var res resultResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.NPGroups) == 0 || len(res.EntityLinks) == 0 {
		t.Errorf("empty result: %+v", res)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.TotalTriples != 2 || st.LastIngest == nil {
		t.Errorf("unexpected stats: %+v", st)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		name string
		req  *http.Request
		want int
	}{
		{"get ingest", httptest.NewRequest(http.MethodGet, "/ingest", nil), http.StatusMethodNotAllowed},
		{"bad json", httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte("{"))), http.StatusBadRequest},
		{"empty batch", httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(`{"triples":[]}`))), http.StatusBadRequest},
		{"blank field", httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(`{"triples":[{"subject":"a","predicate":"","object":"b"}]}`))), http.StatusBadRequest},
		{"post result", httptest.NewRequest(http.MethodPost, "/result", nil), http.StatusMethodNotAllowed},
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, tc.req)
		if rec.Code != tc.want {
			t.Errorf("%s: code = %d, want %d", tc.name, rec.Code, tc.want)
		}
	}

	small := newServer(mustSession(t), 1)
	rec, _ := postIngest(t, small, []tripleJSON{
		{Subject: "a corp", Predicate: "buy", Object: "b corp"},
		{Subject: "c corp", Predicate: "buy", Object: "d corp"},
	})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch = %d, want 413", rec.Code)
	}
}

func mustSession(t *testing.T) *jocl.Session {
	t.Helper()
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestServeConcurrentClients(t *testing.T) {
	srv := testServer(t)
	// Seed one batch so readers have a result.
	rec, _ := postIngest(t, srv, []tripleJSON{{Subject: "a corp", Predicate: "buy", Object: "b labs"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("seed ingest = %d", rec.Code)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"triples":[{"subject":"company %d","predicate":"acquire","object":"startup %d"}]}`, i, i)
			req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("writer %d: %d %s", i, rec.Code, rec.Body)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, path := range []string{"/result", "/stats", "/healthz"} {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("reader %d %s: %d", i, path, rec.Code)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Batches != 9 || st.TotalTriples != 9 {
		t.Errorf("after concurrent ingests: %+v", st)
	}
}
