package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

func testServer(t *testing.T) *server {
	t.Helper()
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	return newServer(sess, serveOptions{maxBatch: 1000})
}

func postIngest(t *testing.T, srv http.Handler, triples []tripleJSON) (*httptest.ResponseRecorder, ingestResponse) {
	t.Helper()
	body, _ := json.Marshal(ingestRequest{Triples: triples})
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var resp ingestResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad ingest response: %v", err)
		}
	}
	return rec, resp
}

func TestServeLifecycle(t *testing.T) {
	srv := testServer(t)

	// Healthy before any data.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}

	// No result yet.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/result", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/result before ingest = %d, want 404", rec.Code)
	}

	rec, ing := postIngest(t, srv, []tripleJSON{
		{Subject: "barack obama", Predicate: "be born in", Object: "honolulu"},
		{Subject: "obama", Predicate: "serve as", Object: "president"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rec.Code, rec.Body)
	}
	if ing.Batch != 1 || !ing.Refreshed || ing.TotalTriples != 2 {
		t.Errorf("unexpected first ingest stats: %+v", ing)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/result", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/result = %d", rec.Code)
	}
	var res resultResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.NPGroups) == 0 || len(res.EntityLinks) == 0 {
		t.Errorf("empty result: %+v", res)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.TotalTriples != 2 || st.LastIngest == nil {
		t.Errorf("unexpected stats: %+v", st)
	}
}

func getJSON(t *testing.T, srv http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code == http.StatusOK && out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
	}
	return rec
}

func TestServeQueryEndpoints(t *testing.T) {
	srv := testServer(t)

	// Before any ingest every query is a 404 (no generation yet).
	if rec := getJSON(t, srv, "/query/resolve?np=obama", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("/query/resolve before ingest = %d, want 404", rec.Code)
	}

	rec, _ := postIngest(t, srv, []tripleJSON{
		{Subject: "barack obama", Predicate: "be born in", Object: "honolulu"},
		{Subject: "barack obama", Predicate: "serve as", Object: "president"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rec.Code, rec.Body)
	}

	var res resolveResponse
	if rec := getJSON(t, srv, "/query/resolve?np=barack+obama", &res); rec.Code != http.StatusOK {
		t.Fatalf("/query/resolve = %d: %s", rec.Code, rec.Body)
	}
	if res.Surface != "barack obama" || res.Canonical == "" || res.ClusterSize < 1 || res.Gen.Generation != 1 {
		t.Errorf("unexpected resolution: %+v", res)
	}

	var cl clusterResponse
	if rec := getJSON(t, srv, "/query/cluster?np=barack+obama", &cl); rec.Code != http.StatusOK {
		t.Fatalf("/query/cluster = %d: %s", rec.Code, rec.Body)
	}
	if len(cl.Members) == 0 || cl.Canonical != res.Canonical {
		t.Errorf("unexpected cluster: %+v", cl)
	}

	var ts triplesResponse
	if rec := getJSON(t, srv, "/query/triples?subject=barack+obama", &ts); rec.Code != http.StatusOK {
		t.Fatalf("/query/triples = %d: %s", rec.Code, rec.Body)
	}
	if ts.Total != 2 || len(ts.Triples) != 2 {
		t.Errorf("unexpected triples: %+v", ts)
	}
	if rec := getJSON(t, srv, "/query/triples?subject=barack+obama&limit=1", &ts); rec.Code != http.StatusOK || len(ts.Triples) != 1 || !ts.Truncated {
		t.Errorf("limited triples = %d: %+v", rec.Code, ts)
	}

	// Relation side and entity lookup: resolve the relation phrase,
	// then look its link target (if any) back up.
	if rec := getJSON(t, srv, "/query/resolve?rp=be+born+in", &res); rec.Code != http.StatusOK {
		t.Fatalf("/query/resolve?rp = %d: %s", rec.Code, rec.Body)
	}
	if res.Target != "" {
		var al aliasesResponse
		if rec := getJSON(t, srv, "/query/relation?id="+res.Target, &al); rec.Code != http.StatusOK {
			t.Fatalf("/query/relation = %d: %s", rec.Code, rec.Body)
		}
		found := false
		for _, a := range al.Aliases {
			if a == "be born in" {
				found = true
			}
		}
		if !found {
			t.Errorf("relation aliases %v miss the linked surface", al.Aliases)
		}
	}

	// Bad requests.
	for path, want := range map[string]int{
		"/query/resolve":                          http.StatusBadRequest, // neither np nor rp
		"/query/resolve?np=x&rp=y":                http.StatusBadRequest, // both
		"/query/entity":                           http.StatusBadRequest, // missing id
		"/query/triples?subject=x&relation=y":     http.StatusBadRequest,
		"/query/triples?subject=x&limit=-4":       http.StatusBadRequest,
		"/query/resolve?np=no+such+phrase+at+all": http.StatusNotFound,
		"/query/entity?id=no-such-entity":         http.StatusNotFound,
	} {
		if rec := getJSON(t, srv, path, nil); rec.Code != want {
			t.Errorf("%s = %d, want %d", path, rec.Code, want)
		}
	}

	// /stats surfaces the index.
	var st statsResponse
	if rec := getJSON(t, srv, "/stats", &st); rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	if !st.QueryEnabled || st.QueryGeneration != 1 || st.QueryMaxResults != 1000 || st.QueryLayers < 1 {
		t.Errorf("stats miss query index fields: %+v", st)
	}
	if st.LastIngest == nil || st.LastIngest.IndexKeys == 0 || !st.LastIngest.IndexFull {
		t.Errorf("last ingest misses index maintenance: %+v", st.LastIngest)
	}
}

func TestServeQueryDisabled(t *testing.T) {
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session(jocl.WithoutQueryIndex())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sess, serveOptions{maxBatch: 1000})
	if rec, _ := postIngest(t, srv, []tripleJSON{{Subject: "a corp", Predicate: "buy", Object: "b labs"}}); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	if rec := getJSON(t, srv, "/query/resolve?np=a+corp", nil); rec.Code != http.StatusNotFound {
		t.Errorf("disabled query = %d, want 404", rec.Code)
	}
	var st statsResponse
	getJSON(t, srv, "/stats", &st)
	if st.QueryEnabled {
		t.Errorf("stats claim query enabled: %+v", st)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		name string
		req  *http.Request
		want int
	}{
		{"get ingest", httptest.NewRequest(http.MethodGet, "/ingest", nil), http.StatusMethodNotAllowed},
		{"bad json", httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte("{"))), http.StatusBadRequest},
		{"empty batch", httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(`{"triples":[]}`))), http.StatusBadRequest},
		{"blank field", httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(`{"triples":[{"subject":"a","predicate":"","object":"b"}]}`))), http.StatusBadRequest},
		{"post result", httptest.NewRequest(http.MethodPost, "/result", nil), http.StatusMethodNotAllowed},
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, tc.req)
		if rec.Code != tc.want {
			t.Errorf("%s: code = %d, want %d", tc.name, rec.Code, tc.want)
		}
	}

	small := newServer(mustSession(t), serveOptions{maxBatch: 1})
	rec, _ := postIngest(t, small, []tripleJSON{
		{Subject: "a corp", Predicate: "buy", Object: "b corp"},
		{Subject: "c corp", Predicate: "buy", Object: "d corp"},
	})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch = %d, want 413", rec.Code)
	}
}

func mustSession(t *testing.T) *jocl.Session {
	t.Helper()
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestServeConcurrentClients(t *testing.T) {
	srv := testServer(t)
	// Seed one batch so readers have a result.
	rec, _ := postIngest(t, srv, []tripleJSON{{Subject: "a corp", Predicate: "buy", Object: "b labs"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("seed ingest = %d", rec.Code)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"triples":[{"subject":"company %d","predicate":"acquire","object":"startup %d"}]}`, i, i)
			req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("writer %d: %d %s", i, rec.Code, rec.Body)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, path := range []string{"/result", "/stats", "/healthz"} {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("reader %d %s: %d", i, path, rec.Code)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Batches != 9 || st.TotalTriples != 9 {
		t.Errorf("after concurrent ingests: %+v", st)
	}
}

func TestServeBodyLimit(t *testing.T) {
	srv := newServer(mustSession(t), serveOptions{maxBatch: 1000, maxBodyBytes: 256})
	big := make([]tripleJSON, 20)
	for i := range big {
		big[i] = tripleJSON{Subject: "some long subject phrase", Predicate: "relate to", Object: "some long object phrase"}
	}
	rec, _ := postIngest(t, srv, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413: %s", rec.Code, rec.Body)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "max-body-bytes") {
		t.Errorf("413 message must name the flag: %v %v", e, err)
	}
	// Small bodies still pass through the limiter.
	rec, _ = postIngest(t, srv, []tripleJSON{{Subject: "a corp", Predicate: "buy", Object: "b labs"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("small body under limiter = %d: %s", rec.Code, rec.Body)
	}
}

func TestServeCheckpointEndpointAndRestore(t *testing.T) {
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, jocl.CheckpointFileName)
	srv := newServer(sess, serveOptions{maxBatch: 1000, checkpointPath: path})

	// Without data: checkpoint still works (an empty-session snapshot).
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/checkpoint", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /checkpoint = %d, want 405", rec.Code)
	}

	if rec, _ := postIngest(t, srv, []tripleJSON{
		{Subject: "barack obama", Predicate: "be born in", Object: "honolulu"},
		{Subject: "obama", Predicate: "serve as", Object: "president"},
	}); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoint", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /checkpoint = %d: %s", rec.Code, rec.Body)
	}
	var cp checkpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Path != path || cp.Bytes == 0 || cp.Batches != 1 {
		t.Errorf("unexpected checkpoint response: %+v", cp)
	}

	// A second server restores from the file — the kill-and-restart
	// path — and answers /stats and /query identically, then keeps
	// ingesting.
	restored, err := bench.RestoreSessionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newServer(restored, serveOptions{maxBatch: 1000, checkpointPath: path})
	var st1, st2 statsResponse
	getJSON(t, srv, "/stats", &st1)
	getJSON(t, srv2, "/stats", &st2)
	if st2.Batches != st1.Batches || st2.TotalTriples != st1.TotalTriples || st2.QueryGeneration != st1.QueryGeneration {
		t.Errorf("restored stats diverge: %+v vs %+v", st2, st1)
	}
	var r1, r2 resolveResponse
	if rec := getJSON(t, srv2, "/query/resolve?np=barack+obama", &r2); rec.Code != http.StatusOK {
		t.Fatalf("restored /query/resolve = %d: %s", rec.Code, rec.Body)
	}
	getJSON(t, srv, "/query/resolve?np=barack+obama", &r1)
	if r1.Canonical != r2.Canonical || r1.Target != r2.Target || r1.Gen.Generation != r2.Gen.Generation {
		t.Errorf("restored query answer diverges: %+v vs %+v", r2, r1)
	}
	if rec, ing := postIngest(t, srv2, []tripleJSON{{Subject: "obama", Predicate: "visit", Object: "chicago"}}); rec.Code != http.StatusOK || ing.Batch != 2 {
		t.Fatalf("restored server cannot ingest: %d %+v", rec.Code, ing)
	}

	// No -checkpoint-dir: POST /checkpoint is a clear client error.
	bare := newServer(mustSession(t), serveOptions{maxBatch: 1000})
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoint", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("POST /checkpoint without dir = %d, want 400", rec.Code)
	}
}

func TestServePeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, jocl.CheckpointFileName)
	srv := newServer(mustSession(t), serveOptions{maxBatch: 1000, checkpointPath: path, checkpointEvery: 2})
	names := []string{"a corp", "b corp", "c corp", "d corp"}
	for i, n := range names {
		body := []tripleJSON{{Subject: n, Predicate: "acquire", Object: "startup " + n}}
		if rec, _ := postIngest(t, srv, body); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d = %d", i, rec.Code)
		}
	}
	// The trigger is asynchronous; wait for the single-flight slot to
	// clear and the file to appear.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if !srv.ckptBusy.Load() {
			if _, err := os.Stat(path); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if srv.ckptErrors.Load() != 0 {
		t.Fatalf("background checkpoint errors: %d", srv.ckptErrors.Load())
	}
	snap, err := jocl.RestoreSessionFile(path, nil)
	if err == nil || snap != nil {
		t.Fatalf("nil KB must be rejected")
	}
}

// mixedLoad drives every subsystem the telemetry catalogue covers:
// several ingests (one epoch build plus frozen extensions), reads on
// each query endpoint, /result, /stats, and a checkpoint when the
// server has one configured.
func mixedLoad(t *testing.T, srv *server) {
	t.Helper()
	batches := [][]tripleJSON{
		{
			{Subject: "barack obama", Predicate: "be born in", Object: "honolulu"},
			{Subject: "obama", Predicate: "serve as", Object: "president"},
		},
		{
			{Subject: "barack obama", Predicate: "visit", Object: "chicago"},
			{Subject: "b. obama", Predicate: "be elected in", Object: "2008"},
		},
		{
			{Subject: "a corp", Predicate: "acquire", Object: "b labs"},
		},
	}
	for i, b := range batches {
		if rec, _ := postIngest(t, srv, b); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	for _, path := range []string{
		"/result", "/stats",
		"/query/resolve?np=obama",
		"/query/cluster?np=barack+obama",
		"/query/triples?subject=barack+obama",
		"/query/resolve?rp=be+born+in",
	} {
		getJSON(t, srv, path, nil)
	}
	if srv.opt.checkpointPath != "" {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoint", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("checkpoint during mixed load = %d: %s", rec.Code, rec.Body)
		}
	}
}

// scrapeFamilies GETs /metrics and returns the set of metric family
// names from the # TYPE lines, plus the raw body.
func scrapeFamilies(t *testing.T, srv *server) (map[string]string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	fams := map[string]string{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 4 {
			t.Errorf("malformed TYPE line: %q", line)
			continue
		}
		fams[parts[2]] = parts[3]
	}
	return fams, rec.Body.String()
}

func TestServeMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(mustSession(t), serveOptions{
		maxBatch:       1000,
		checkpointPath: filepath.Join(dir, jocl.CheckpointFileName),
	})
	mixedLoad(t, srv)

	fams, body := scrapeFamilies(t, srv)
	if len(fams) < 20 {
		t.Errorf("/metrics exposes %d families, want >= 20", len(fams))
	}
	// One representative per subsystem: ingest, BP, partition, query,
	// checkpoint, HTTP.
	for name, kind := range map[string]string{
		"jocl_ingest_duration_seconds":       "histogram",
		"jocl_ingest_stage_duration_seconds": "histogram",
		"jocl_bp_sweeps_total":               "counter",
		"jocl_partition_blocks":              "gauge",
		"jocl_query_requests_total":          "counter",
		"jocl_query_generation":              "gauge",
		"jocl_checkpoint_total":              "counter",
		"jocl_checkpoint_age_seconds":        "gauge",
		"jocl_http_requests_total":           "counter",
		"jocl_http_request_duration_seconds": "histogram",
	} {
		if got, ok := fams[name]; !ok {
			t.Errorf("metric %s missing from /metrics", name)
		} else if got != kind {
			t.Errorf("metric %s has type %s, want %s", name, got, kind)
		}
	}
	// Load-bearing values: the ingests and the HTTP layer's own labels
	// must be visible.
	for _, want := range []string{
		"jocl_ingest_total 3",
		`jocl_http_requests_total{path="/ingest",method="POST",code="200"} 3`,
		`jocl_query_requests_total{op="resolve_np"}`,
		`jocl_ingest_stage_duration_seconds_bucket{stage="bp",le="+Inf"}`,
		"jocl_checkpoint_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q", want)
		}
	}

	// Unknown paths are labeled "unmatched", not per-path (cardinality).
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/no/such/path/12345", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", rec.Code)
	}
	_, body = scrapeFamilies(t, srv)
	if !strings.Contains(body, `jocl_http_requests_total{path="unmatched",method="GET",code="404"} 1`) {
		t.Errorf("unmatched request not labeled: %s", grepLines(body, "unmatched"))
	}

	// POST /metrics is a method error.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// traceJSON mirrors the /debug/trace wire format.
type traceJSON struct {
	ID      int64   `json:"id"`
	Batch   int     `json:"batch"`
	TotalMS float64 `json:"total_ms"`
	Spans   []struct {
		Name    string  `json:"name"`
		StartMS float64 `json:"start_ms"`
		MS      float64 `json:"ms"`
	} `json:"spans"`
}

func TestServeDebugTrace(t *testing.T) {
	srv := testServer(t)
	mixedLoad(t, srv)

	var resp struct {
		Traces []traceJSON `json:"traces"`
	}
	if rec := getJSON(t, srv, "/debug/trace", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace = %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(resp.Traces))
	}
	// Newest first.
	if resp.Traces[0].Batch != 3 || resp.Traces[2].Batch != 1 {
		t.Errorf("traces out of order: batches %d, %d, %d",
			resp.Traces[0].Batch, resp.Traces[1].Batch, resp.Traces[2].Batch)
	}
	for _, tr := range resp.Traces {
		if len(tr.Spans) == 0 {
			t.Errorf("trace %d (batch %d) has no spans", tr.ID, tr.Batch)
			continue
		}
		sum := 0.0
		for _, sp := range tr.Spans {
			if sp.Name == "" || sp.MS < 0 {
				t.Errorf("trace %d: bad span %+v", tr.ID, sp)
			}
			sum += sp.MS
		}
		// Stage durations must account for the ingest: within 5% of the
		// total (skip sub-millisecond ingests where rounding dominates).
		if tr.TotalMS >= 1 {
			if diff := (tr.TotalMS - sum) / tr.TotalMS; diff > 0.05 || diff < -0.05 {
				t.Errorf("trace %d (batch %d): spans sum to %.3fms of %.3fms total (%.1f%% off)",
					tr.ID, tr.Batch, sum, tr.TotalMS, 100*diff)
			}
		}
	}

	// ?n= caps the answer, newest first.
	if rec := getJSON(t, srv, "/debug/trace?n=1", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace?n=1 = %d", rec.Code)
	}
	if len(resp.Traces) != 1 || resp.Traces[0].Batch != 3 {
		t.Errorf("?n=1 gave %d traces (first batch %d)", len(resp.Traces), resp.Traces[0].Batch)
	}
	if rec := getJSON(t, srv, "/debug/trace?n=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ?n= = %d, want 400", rec.Code)
	}
}

func TestServeTelemetryDisabled(t *testing.T) {
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session(jocl.WithoutTelemetry())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sess, serveOptions{maxBatch: 1000})
	if rec, _ := postIngest(t, srv, []tripleJSON{{Subject: "a corp", Predicate: "buy", Object: "b labs"}}); rec.Code != http.StatusOK {
		t.Fatalf("ingest without telemetry = %d", rec.Code)
	}
	for _, path := range []string{"/metrics", "/debug/trace"} {
		if rec := getJSON(t, srv, path, nil); rec.Code != http.StatusNotFound {
			t.Errorf("%s with telemetry off = %d, want 404", path, rec.Code)
		}
	}
}

func TestServePprofGated(t *testing.T) {
	off := testServer(t)
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", rec.Code)
	}

	on := newServer(mustSession(t), serveOptions{maxBatch: 1000, pprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index with -pprof = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d, want 200", rec.Code)
	}
}

// TestMetricsDocumented is the docs drift gate: every metric family a
// serving session (plus the HTTP layer) registers must be named in
// docs/OBSERVABILITY.md. Families are registered up front at
// construction, so no traffic is needed to see the full catalogue.
// The session runs with the ingress queue enabled — the production
// default — so the jocl_ingress_* families are covered too.
func TestMetricsDocumented(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("reading the observability reference: %v", err)
	}
	doc := string(raw)

	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session(jocl.WithIngress(jocl.IngressOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sess, serveOptions{maxBatch: 1000})
	tel := srv.sess.Telemetry()
	if tel == nil {
		t.Fatal("telemetry-enabled session returned a nil handle")
	}
	names := tel.Registry.Names()
	if len(names) < 20 {
		t.Fatalf("only %d registered families — catalogue registration broke: %v", len(names), names)
	}
	var missing []string
	for _, name := range names {
		// Documented names are backticked table cells, bare or with a
		// {label,...} suffix — either way the backtick abuts the name.
		if !strings.Contains(doc, "`"+name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("metrics registered but missing from docs/OBSERVABILITY.md: %v", missing)
	}
}
