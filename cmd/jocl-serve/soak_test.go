package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/checkpoint"
)

// TestServeSoakReplayEquivalence runs the full serving stack — real
// listener, ingress queue, periodic checkpoints — under concurrent
// open-loop traffic, then proves the end state honest two ways:
//
//  1. The checkpoint's accumulated triple log is exactly the multiset
//     of batches clients got a 200 for — nothing accepted was lost,
//     nothing shed or errored leaked in.
//  2. A fresh session serially replaying that log (epoch first, then
//     the remainder) reaches the same canonical groups, links, and
//     query answers as the live session that absorbed the traffic
//     through coalesced merges.
//
// Along the way it asserts liveness (acceptances keep happening, no
// shed-storm livelock) and that every shed response carries a usable
// Retry-After. Run with -race: the point of the soak is to churn the
// claim/cancel/commit interleavings.
func TestServeSoakReplayEquivalence(t *testing.T) {
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session(jocl.WithIngress(jocl.IngressOptions{
		QueueDepth:    32,
		CoalesceDepth: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sess.Close(ctx)
	})
	dir := t.TempDir()
	path := filepath.Join(dir, jocl.CheckpointFileName)
	srv := newServer(sess, serveOptions{maxBatch: 1000, checkpointPath: path})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	soak := 2 * time.Second
	if testing.Short() {
		soak = 500 * time.Millisecond
	}
	deadline := time.Now().Add(soak)

	const writers = 4
	var (
		wg       sync.WaitGroup
		accepted [writers][][]tripleJSON // per-writer batches that got a 200
		oks      atomic.Int64
		sheds    atomic.Int64
		failures = make(chan string, 256)
	)
	fail := func(format string, args ...any) {
		select {
		case failures <- fmt.Sprintf(format, args...):
		default:
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; time.Now().Before(deadline); seq++ {
				batch := []tripleJSON{{
					Subject:   fmt.Sprintf("w%d firm %d", w, seq),
					Predicate: "absorb",
					Object:    fmt.Sprintf("w%d target %d", w, seq),
				}}
				if seq%3 == 0 {
					batch = append(batch, tripleJSON{
						Subject:   fmt.Sprintf("w%d firm %d", w, seq),
						Predicate: "retain",
						Object:    fmt.Sprintf("w%d advisor %d", w, seq),
					})
				}
				body, _ := json.Marshal(ingestRequest{Triples: batch})
				resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					fail("writer %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted[w] = append(accepted[w], batch)
					oks.Add(1)
				case http.StatusTooManyRequests:
					sheds.Add(1)
					ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					if err != nil || ra < 1 || ra > 30 {
						fail("writer %d: 429 with Retry-After %q", w, resp.Header.Get("Retry-After"))
					}
					// An open-loop client would keep firing; backing off
					// briefly keeps the soak from being a pure shed storm.
					time.Sleep(5 * time.Millisecond)
				default:
					fail("writer %d: unexpected status %d", w, resp.StatusCode)
				}
			}
		}(w)
	}

	// Readers hammer the query surface concurrently with the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{
				"/stats", "/result", "/metrics",
				fmt.Sprintf("/query/resolve?np=w%d+firm+0", r),
				fmt.Sprintf("/query/triples?subject=w%d+firm+1", r),
			}
			for i := 0; time.Now().Before(deadline); i++ {
				resp, err := client.Get(ts.URL + paths[i%len(paths)])
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 404 is fine (nothing ingested yet / unknown surface);
				// server errors are not.
				if resp.StatusCode >= 500 {
					fail("reader %d %s: %d", r, paths[i%len(paths)], resp.StatusCode)
				}
			}
		}(r)
	}

	// A checkpoint client snapshots mid-traffic, racing the quiesce
	// logic against in-flight merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			resp, err := client.Post(ts.URL+"/checkpoint", "application/json", nil)
			if err != nil {
				fail("checkpointer: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("checkpointer: status %d", resp.StatusCode)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if oks.Load() < writers {
		t.Fatalf("only %d accepted ingests across %d writers (%d shed) — the pipeline made no progress",
			oks.Load(), writers, sheds.Load())
	}
	t.Logf("soak: %d accepted, %d shed", oks.Load(), sheds.Load())

	// Every writer has returned, so every accepted batch has committed.
	// Take the final checkpoint and compare its log against what the
	// clients believe was accepted.
	resp, err := client.Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final checkpoint = %d", resp.StatusCode)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	var want []string
	for w := range accepted {
		for _, b := range accepted[w] {
			for _, tr := range b {
				want = append(want, tr.Subject+"|"+tr.Predicate+"|"+tr.Object)
			}
		}
	}
	got := make([]string, len(snap.Triples))
	for i, tr := range snap.Triples {
		got[i] = tr.Subj + "|" + tr.Pred + "|" + tr.Obj
	}
	sort.Strings(want)
	sorted := append([]string(nil), got...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(want, sorted) {
		t.Fatalf("checkpoint log is not the multiset of accepted batches: %d accepted triples vs %d checkpointed",
			len(want), len(got))
	}

	// Serial replay: the epoch slice first (reproducing the frozen
	// signal statistics exactly), then the remainder as one batch —
	// the post-epoch merge the equivalence suite proves invisible.
	replay, err := bench.Session()
	if err != nil {
		t.Fatal(err)
	}
	epoch := make([]jocl.Triple, 0, snap.EpochTriples)
	rest := make([]jocl.Triple, 0, len(snap.Triples)-snap.EpochTriples)
	for i, tr := range snap.Triples {
		jt := jocl.Triple{Subject: tr.Subj, Predicate: tr.Pred, Object: tr.Obj}
		if i < snap.EpochTriples {
			epoch = append(epoch, jt)
		} else {
			rest = append(rest, jt)
		}
	}
	if len(epoch) > 0 {
		if _, err := replay.Ingest(epoch); err != nil {
			t.Fatal(err)
		}
	}
	if len(rest) > 0 {
		if _, err := replay.Ingest(rest); err != nil {
			t.Fatal(err)
		}
	}

	live := sess.Snapshot()
	rep := replay.Snapshot()
	if live == nil || rep == nil {
		t.Fatalf("missing snapshot (live=%v replay=%v)", live == nil, rep == nil)
	}
	for _, c := range []struct {
		name string
		a, b interface{}
	}{
		{"NPGroups", live.NPGroups, rep.NPGroups},
		{"RPGroups", live.RPGroups, rep.RPGroups},
		{"EntityLinks", live.EntityLinks, rep.EntityLinks},
		{"RelationLinks", live.RelationLinks, rep.RelationLinks},
	} {
		if !reflect.DeepEqual(c.a, c.b) {
			t.Errorf("live vs serial replay: %s diverge", c.name)
		}
	}
	if lt, rt := sess.Stats().TotalTriples, replay.Stats().TotalTriples; lt != rt {
		t.Errorf("total triples diverge: live %d vs replay %d", lt, rt)
	}

	// Spot-check the read path on every writer's first accepted subject.
	for w := range accepted {
		if len(accepted[w]) == 0 {
			continue
		}
		surface := accepted[w][0][0].Subject
		la, lok := sess.QueryEntity(surface)
		ra, rok := replay.QueryEntity(surface)
		if lok != rok {
			t.Errorf("QueryEntity(%q) ok diverges (%v vs %v)", surface, lok, rok)
			continue
		}
		la.Gen, ra.Gen = jocl.QueryGen{}, jocl.QueryGen{}
		if !reflect.DeepEqual(la, ra) {
			t.Errorf("QueryEntity(%q) diverges\nlive:   %+v\nreplay: %+v", surface, la, ra)
		}
		lts, _ := sess.QueryTriplesBySubject(surface, 0)
		rts, _ := replay.QueryTriplesBySubject(surface, 0)
		if !reflect.DeepEqual(lts.Triples, rts.Triples) || lts.Total != rts.Total {
			t.Errorf("QueryTriplesBySubject(%q) diverges (%d vs %d)", surface, lts.Total, rts.Total)
		}
	}
}
