package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

// The tests below exercise the request-tracing surface end to end:
// traceparent headers in, X-Trace-Id and trace_id out, span trees for
// coalesced groups on /debug/requests, shed requests retrievable by
// trace id, the SLO gauges on /metrics, and the pipeline watchdog on
// /debug/watchdog.

// finishedJSON / spanJSON mirror the /debug/requests wire format.
type finishedJSON struct {
	TraceID    string     `json:"trace_id"`
	Kind       string     `json:"kind"`
	Status     string     `json:"status"`
	SampledFor string     `json:"sampled_for"`
	TotalMS    float64    `json:"total_ms"`
	Spans      []spanJSON `json:"spans"`
}

type spanJSON struct {
	Name    string  `json:"name"`
	SpanID  string  `json:"span_id"`
	Parent  string  `json:"parent_id"`
	StartMS float64 `json:"start_ms"`
	MS      float64 `json:"ms"`
	Status  string  `json:"status"`
	Note    string  `json:"note"`
	Links   []struct {
		TraceID string `json:"trace_id"`
		SpanID  string `json:"span_id"`
	} `json:"links"`
	Attrs map[string]string `json:"attrs"`
}

type requestsJSON struct {
	SlowThresholdMS float64        `json:"slow_threshold_ms"`
	Requests        []finishedJSON `json:"requests"`
	Groups          []finishedJSON `json:"groups"`
}

// traceparentFor builds a deterministic valid W3C traceparent header
// and returns it with its trace and span ids.
func traceparentFor(i int) (header, traceID, spanID string) {
	traceID = fmt.Sprintf("%032x", 0xabc1000+i)
	spanID = fmt.Sprintf("%016x", 0xdef1000+i)
	return "00-" + traceID + "-" + spanID + "-01", traceID, spanID
}

// asyncIngestTraced is asyncIngest with a traceparent request header.
func asyncIngestTraced(srv *server, header string, triples []tripleJSON) chan *httptest.ResponseRecorder {
	out := make(chan *httptest.ResponseRecorder, 1)
	body, _ := json.Marshal(ingestRequest{Triples: triples})
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
	req.Header.Set("traceparent", header)
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		out <- rec
	}()
	return out
}

// findSpanJSON returns the first span with the given name, or nil.
func findSpanJSON(f finishedJSON, name string) *spanJSON {
	for i := range f.Spans {
		if f.Spans[i].Name == name {
			return &f.Spans[i]
		}
	}
	return nil
}

// TestServeRequestTracing drives three concurrent ingests carrying
// traceparent headers into one coalesced group and proves the wire
// contract: every response echoes its caller's trace id (header and
// body), /debug/requests serves complete request span trees whose
// roots are parented under the caller's span and link to the shared
// group trace, the group trace carries the per-stage spans and the
// coalesce count, and individual traces are retrievable by id.
func TestServeRequestTracing(t *testing.T) {
	srv, _ := ingressServer(t, jocl.IngressOptions{
		QueueDepth:     8,
		CoalesceDepth:  3,
		CoalesceWindow: time.Minute,
	}, jocl.WithTracing(jocl.TraceOptions{SlowThreshold: -1}))

	type sent struct {
		traceID, spanID string
		ch              chan *httptest.ResponseRecorder
	}
	var subs []sent
	for i := 0; i < 2; i++ {
		h, tid, sid := traceparentFor(i)
		subs = append(subs, sent{tid, sid, asyncIngestTraced(srv, h, oneTriple(i))})
	}
	// Wait for both to be parked in the open group before the sealer,
	// so the group membership is deterministic.
	pollStats(t, srv, "two ingests parked", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.Submitted == 2 && st.Batches == 0
	})
	h, tid, sid := traceparentFor(2)
	subs = append(subs, sent{tid, sid, asyncIngestTraced(srv, h, oneTriple(2))})

	for i, sub := range subs {
		rec := <-sub.ch
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d = %d: %s", i, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-Trace-Id"); got != sub.traceID {
			t.Errorf("ingest %d X-Trace-Id = %q, want %q", i, got, sub.traceID)
		}
		var resp ingestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.TraceID != sub.traceID {
			t.Errorf("ingest %d trace_id = %q, want %q", i, resp.TraceID, sub.traceID)
		}
		if resp.CoalescedBatches != 3 {
			t.Errorf("ingest %d coalesced_batches = %d, want 3", i, resp.CoalescedBatches)
		}
	}

	var reqs requestsJSON
	if rec := getJSON(t, srv, "/debug/requests", &reqs); rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests = %d: %s", rec.Code, rec.Body)
	}
	if reqs.SlowThresholdMS >= 0 {
		t.Errorf("slow_threshold_ms = %v, want negative (retain everything)", reqs.SlowThresholdMS)
	}
	if len(reqs.Requests) != 3 || len(reqs.Groups) != 1 {
		t.Fatalf("retained %d requests / %d groups, want 3 / 1", len(reqs.Requests), len(reqs.Groups))
	}

	group := reqs.Groups[0]
	groupRoot := findSpanJSON(group, "ingest-group")
	if group.Kind != "group" || groupRoot == nil {
		t.Fatalf("malformed group trace: %+v", group)
	}
	if groupRoot.Attrs["coalesced"] != "3" {
		t.Errorf("group coalesced attr = %q, want 3", groupRoot.Attrs["coalesced"])
	}
	for _, stage := range []string{"prepare", "commit", "publish"} {
		sp := findSpanJSON(group, stage)
		if sp == nil {
			t.Errorf("group trace misses the %s span", stage)
			continue
		}
		if sp.Parent != groupRoot.SpanID {
			t.Errorf("%s span parented to %q, not the group root %q", stage, sp.Parent, groupRoot.SpanID)
		}
	}

	for _, sub := range subs {
		var f finishedJSON
		for _, r := range reqs.Requests {
			if r.TraceID == sub.traceID {
				f = r
				break
			}
		}
		if f.TraceID == "" {
			t.Fatalf("trace %s not in /debug/requests", sub.traceID)
		}
		if f.Kind != "request" || f.Status != "ok" || f.SampledFor != "all" {
			t.Errorf("trace %s: kind=%q status=%q sampled_for=%q", sub.traceID, f.Kind, f.Status, f.SampledFor)
		}
		root := findSpanJSON(f, "ingest")
		if root == nil {
			t.Fatalf("trace %s has no ingest root: %+v", sub.traceID, f.Spans)
		}
		// The root is parented under the caller's traceparent span and
		// links to the shared group trace.
		if root.Parent != sub.spanID {
			t.Errorf("trace %s root parent = %q, want the caller's span %q", sub.traceID, root.Parent, sub.spanID)
		}
		if len(root.Links) != 1 || root.Links[0].TraceID != group.TraceID {
			t.Errorf("trace %s root links = %+v, want one link to group %s", sub.traceID, root.Links, group.TraceID)
		}
		enq := findSpanJSON(f, "enqueue")
		if enq == nil || enq.Parent != root.SpanID {
			t.Errorf("trace %s: enqueue span missing or mis-parented: %+v", sub.traceID, enq)
		}
	}

	// Retrieval by id: a request, the group, an unknown id, a bad id.
	var one finishedJSON
	if rec := getJSON(t, srv, "/debug/requests?trace="+subs[0].traceID, &one); rec.Code != http.StatusOK || one.TraceID != subs[0].traceID {
		t.Errorf("?trace=<request> = %d, trace %q", rec.Code, one.TraceID)
	}
	if rec := getJSON(t, srv, "/debug/requests?trace="+group.TraceID, &one); rec.Code != http.StatusOK || one.Kind != "group" {
		t.Errorf("?trace=<group> = %d, kind %q", rec.Code, one.Kind)
	}
	if rec := getJSON(t, srv, "/debug/requests?trace="+strings.Repeat("9", 32), nil); rec.Code != http.StatusNotFound {
		t.Errorf("?trace=<unknown> = %d, want 404", rec.Code)
	}
	if rec := getJSON(t, srv, "/debug/requests?trace=nope", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("?trace=<malformed> = %d, want 400", rec.Code)
	}

	// The tracing and SLO families are on /metrics; the SLO gauges are
	// materialized at construction, before any sampling.
	_, body := scrapeFamilies(t, srv)
	for _, want := range []string{
		"jocl_trace_requests_total 3",
		"jocl_trace_groups_total 1",
		`jocl_trace_sampled_total{reason="all"} 3`,
		`jocl_slo_target{slo="availability"} 0.999`,
		`jocl_slo_target{slo="latency"} 0.95`,
		`jocl_slo_error_budget_remaining{slo="availability"}`,
		`jocl_slo_burn_rate{slo="availability",window=`,
		"jocl_ingress_queue_oldest_age_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q:\n%s", want, grepLines(body, "jocl_slo"))
		}
	}
}

// TestServeShedTraceRetrievable wedges the preparer, sheds a request
// past the high-water mark, and proves the shed request's trace is
// retained and retrievable by its trace id — the "why did my request
// bounce" forensic path. It also checks the /stats ingress block
// reports the oldest queued submission's age while batches wait.
func TestServeShedTraceRetrievable(t *testing.T) {
	srv, _ := ingressServer(t, jocl.IngressOptions{
		QueueDepth:     4,
		CoalesceDepth:  2,
		CoalesceWindow: time.Minute,
		ShedDepth:      2,
	}, jocl.WithTracing(jocl.TraceOptions{SlowThreshold: -1}))

	// Two large batches coalesce into the epoch ingest and wedge the
	// preparer; two singles stack the queue to the high-water mark.
	a := asyncIngest(srv, nil, bigBatch("gamma", 400))
	b := asyncIngest(srv, nil, bigBatch("delta", 400))
	pollStats(t, srv, "epoch merge sealed", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.Submitted == 2 && st.Ingress.QueueDepth == 0 && st.Batches == 0
	})
	c := asyncIngest(srv, nil, oneTriple(200))
	d := asyncIngest(srv, nil, oneTriple(201))
	st := pollStats(t, srv, "queue at high-water mark", func(st statsResponse) bool {
		return st.Ingress != nil && st.Ingress.QueueDepth == 2
	})
	if st.Ingress.QueueOldestEnqueued == nil || st.Ingress.QueueOldestAgeMS < 0 {
		t.Errorf("/stats ingress misses the oldest-queued age while batches wait: %+v", st.Ingress)
	}

	h, tid, _ := traceparentFor(77)
	rec := <-asyncIngestTraced(srv, h, oneTriple(202))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submission past high-water = %d, want 429: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != tid {
		t.Errorf("shed response X-Trace-Id = %q, want %q", got, tid)
	}
	var f finishedJSON
	if rec := getJSON(t, srv, "/debug/requests?trace="+tid, &f); rec.Code != http.StatusOK {
		t.Fatalf("shed trace not retrievable: %d %s", rec.Code, rec.Body)
	}
	if f.Status != "shed" || f.SampledFor != "shed" {
		t.Errorf("shed trace status=%q sampled_for=%q, want shed/shed", f.Status, f.SampledFor)
	}
	root := findSpanJSON(f, "ingest")
	if root == nil || !strings.Contains(root.Note, "high-water") {
		t.Errorf("shed trace root misses the shed note: %+v", root)
	}

	// Drain everything accepted.
	for name, ch := range map[string]chan *httptest.ResponseRecorder{"gamma": a, "delta": b, "c": c, "d": d} {
		if rec := <-ch; rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", name, rec.Code, rec.Body)
		}
	}
}

type watchdogJSON struct {
	Watchdog struct {
		Stalled    bool   `json:"stalled"`
		Preparing  bool   `json:"preparing"`
		Committing bool   `json:"committing"`
		QueueDepth int    `json:"queue_depth"`
		Stalls     uint64 `json:"stalls"`
	} `json:"watchdog"`
	LastStall *struct {
		Status struct {
			Stalled bool `json:"stalled"`
		} `json:"status"`
		Goroutines string `json:"goroutines"`
	} `json:"last_stall"`
}

// TestServeWatchdogStallAndRecovery runs the pipeline with a tiny
// stall bar so a large epoch prepare trips the watchdog, then proves
// /debug/watchdog reports the stall with its flight-recorder snapshot,
// the jocl_watchdog_* metrics move, and recovery clears the flag once
// the ingest lands.
func TestServeWatchdogStallAndRecovery(t *testing.T) {
	srv, _ := ingressServer(t, jocl.IngressOptions{
		QueueDepth:    4,
		CoalesceDepth: 1,
		StallAfter:    10 * time.Millisecond,
	})

	var wd watchdogJSON
	if rec := getJSON(t, srv, "/debug/watchdog", &wd); rec.Code != http.StatusOK {
		t.Fatalf("/debug/watchdog = %d: %s", rec.Code, rec.Body)
	}
	if wd.Watchdog.Stalled || wd.Watchdog.Stalls != 0 {
		t.Fatalf("idle pipeline reports a stall: %+v", wd.Watchdog)
	}

	// A 600-triple epoch prepare is far longer than the 10ms bar; the
	// preparer heartbeats only at claim and completion, so the watchdog
	// must declare a stall mid-prepare.
	ch := asyncIngest(srv, nil, bigBatch("epsilon", 600))
	deadline := time.Now().Add(20 * time.Second)
	for {
		wd = watchdogJSON{}
		getJSON(t, srv, "/debug/watchdog", &wd)
		if wd.Watchdog.Stalls >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never declared a stall: %+v", wd.Watchdog)
		}
		time.Sleep(time.Millisecond)
	}
	if wd.LastStall == nil {
		t.Fatal("no flight-recorder snapshot on /debug/watchdog")
	}
	if !wd.LastStall.Status.Stalled {
		t.Errorf("stall report not marked stalled: %+v", wd.LastStall.Status)
	}
	if !strings.Contains(wd.LastStall.Goroutines, "goroutine") {
		t.Error("stall report has no goroutine dump")
	}

	if rec := <-ch; rec.Code != http.StatusOK {
		t.Fatalf("epoch ingest = %d: %s", rec.Code, rec.Body)
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		wd = watchdogJSON{}
		getJSON(t, srv, "/debug/watchdog", &wd)
		if !wd.Watchdog.Stalled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never recovered: %+v", wd.Watchdog)
		}
		time.Sleep(time.Millisecond)
	}
	_, body := scrapeFamilies(t, srv)
	if !strings.Contains(body, "jocl_watchdog_stalled 0") {
		t.Errorf("jocl_watchdog_stalled not 0 after recovery:\n%s", grepLines(body, "jocl_watchdog"))
	}
	if strings.Contains(body, "jocl_watchdog_stalls_total 0") {
		t.Errorf("jocl_watchdog_stalls_total still 0 after a stall:\n%s", grepLines(body, "jocl_watchdog"))
	}
}

// TestServeTracingDisabled proves the gating: with -trace=false the
// debug endpoint 404s and responses carry no trace identity, and
// /debug/watchdog 404s without the ingress queue.
func TestServeTracingDisabled(t *testing.T) {
	bench, err := jocl.GenerateBenchmark("reverb45k", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bench.Session(jocl.WithoutTracing())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sess, serveOptions{maxBatch: 1000})
	rec, resp := postIngest(t, srv, []tripleJSON{{Subject: "a corp", Predicate: "buy", Object: "b labs"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest without tracing = %d", rec.Code)
	}
	if resp.TraceID != "" || rec.Header().Get("X-Trace-Id") != "" {
		t.Errorf("tracing-off response carries a trace id: %q / %q", resp.TraceID, rec.Header().Get("X-Trace-Id"))
	}
	if rec := getJSON(t, srv, "/debug/requests", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/requests with tracing off = %d, want 404", rec.Code)
	}
	if rec := getJSON(t, srv, "/debug/watchdog", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/watchdog without ingress = %d, want 404", rec.Code)
	}
}
