// Command jocl-datagen synthesizes a benchmark data set (see
// internal/datasets and DESIGN.md) and writes it to a directory in the
// plain-text formats the jocl command reads:
//
//	triples.tsv, entities.tsv, relations.tsv, facts.tsv, anchors.tsv,
//	corpus.txt, paraphrases.txt (a rebuild of the PPDB input groups),
//	gold-np-links.tsv, gold-rp-links.tsv,
//	gold-np-groups.tsv, gold-rp-groups.tsv
//
// Usage:
//
//	jocl-datagen -profile reverb45k -scale 0.05 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/ckb"
	"repro/internal/datasets"
	"repro/internal/kbio"
)

func main() {
	var (
		profile = flag.String("profile", "reverb45k", "reverb45k | nytimes2018")
		scale   = flag.Float64("scale", 0.05, "fraction of the paper's data set size")
		out     = flag.String("out", "data", "output directory")
	)
	flag.Parse()
	if err := run(*profile, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "jocl-datagen:", err)
		os.Exit(1)
	}
}

func run(profile string, scale float64, out string) error {
	var p datasets.Profile
	switch profile {
	case "reverb45k":
		p = datasets.ReVerb45K(scale)
	case "nytimes2018":
		p = datasets.NYTimes2018(scale)
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	ds, err := datasets.Generate(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}

	if err := write("triples.tsv", func(f *os.File) error {
		return ds.OKB.WriteTSV(f)
	}); err != nil {
		return err
	}
	if err := write("entities.tsv", func(f *os.File) error {
		var es []ckb.Entity
		for _, id := range ds.CKB.EntityIDs() {
			es = append(es, *ds.CKB.Entity(id))
		}
		return kbio.WriteEntities(f, es)
	}); err != nil {
		return err
	}
	if err := write("relations.tsv", func(f *os.File) error {
		var rs []ckb.Relation
		for _, id := range ds.CKB.RelationIDs() {
			rs = append(rs, *ds.CKB.Relation(id))
		}
		return kbio.WriteRelations(f, rs)
	}); err != nil {
		return err
	}
	if err := write("facts.tsv", func(f *os.File) error {
		return kbio.WriteFacts(f, ds.CKB.Facts())
	}); err != nil {
		return err
	}
	if err := write("anchors.tsv", func(f *os.File) error {
		var anchors []kbio.Anchor
		for _, id := range ds.CKB.EntityIDs() {
			e := ds.CKB.Entity(id)
			for _, alias := range e.Aliases {
				if n := ds.CKB.AnchorCount(alias); n > 0 {
					// AnchorCount aggregates across entities sharing the
					// surface; emit the per-entity popularity share.
					share := int(float64(n) * ds.CKB.Popularity(alias, id))
					if share > 0 {
						anchors = append(anchors, kbio.Anchor{Surface: alias, Entity: id, Count: share})
					}
				}
			}
		}
		return kbio.WriteAnchors(f, anchors)
	}); err != nil {
		return err
	}

	writeLabels := func(name string, labels map[string]string) error {
		return write(name, func(f *os.File) error {
			keys := make([]string, 0, len(labels))
			for k := range labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return kbio.WriteLabels(f, labels, keys)
		})
	}
	if err := writeLabels("gold-np-links.tsv", ds.GoldNPLink); err != nil {
		return err
	}
	if err := writeLabels("gold-rp-links.tsv", ds.GoldRPLink); err != nil {
		return err
	}
	if err := writeLabels("gold-np-groups.tsv", ds.GoldNPCluster); err != nil {
		return err
	}
	if err := writeLabels("gold-rp-groups.tsv", ds.GoldRPCluster); err != nil {
		return err
	}

	fmt.Printf("wrote %s: %d triples, %d entities, %d relations, %d facts\n",
		out, ds.OKB.Len(), len(ds.CKB.EntityIDs()), len(ds.CKB.RelationIDs()), len(ds.CKB.Facts()))
	return nil
}
