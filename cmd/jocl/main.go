// Command jocl runs joint Open KB canonicalization and linking over
// triple and knowledge-base files, printing the canonicalization
// groups and the CKB links it infers.
//
// Usage:
//
//	jocl -triples triples.tsv -entities entities.tsv \
//	     -relations relations.tsv -facts facts.tsv \
//	     [-anchors anchors.tsv] [-corpus corpus.txt] \
//	     [-paraphrases paraphrases.txt] [-mode joint|canon|link] \
//	     [-features all|double|single|extended] [-max-candidates K] \
//	     [-gold-np-links g.tsv] [-gold-rp-links g.tsv] \
//	     [-gold-np-groups g.tsv] [-gold-rp-groups g.tsv]
//
// File formats are documented in internal/kbio. Output: one line per
// canonicalization group ("group: a | b | c -> target"), NP groups
// first, then RP groups.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/kbio"
)

func main() {
	var (
		triplesPath     = flag.String("triples", "", "OIE triples TSV (required)")
		entitiesPath    = flag.String("entities", "", "CKB entities TSV (required)")
		relationsPath   = flag.String("relations", "", "CKB relations TSV (required)")
		factsPath       = flag.String("facts", "", "CKB facts TSV (required)")
		anchorsPath     = flag.String("anchors", "", "anchor statistics TSV (optional)")
		corpusPath      = flag.String("corpus", "", "embedding training corpus (optional)")
		paraphrasesPath = flag.String("paraphrases", "", "paraphrase groups file (optional)")
		mode            = flag.String("mode", "joint", "joint | canon | link")
		features        = flag.String("features", "all", "all | double | single | extended")
		maxCandidates   = flag.Int("max-candidates", 6, "CKB candidates per linking variable")
		goldNPLinks     = flag.String("gold-np-links", "", "gold NP link labels TSV for evaluation (optional)")
		goldRPLinks     = flag.String("gold-rp-links", "", "gold RP link labels TSV (optional)")
		goldNPGroups    = flag.String("gold-np-groups", "", "gold NP group labels TSV (optional)")
		goldRPGroups    = flag.String("gold-rp-groups", "", "gold RP group labels TSV (optional)")
	)
	flag.Parse()
	if err := run(*triplesPath, *entitiesPath, *relationsPath, *factsPath,
		*anchorsPath, *corpusPath, *paraphrasesPath, *mode, *features, *maxCandidates,
		goldFiles{np: *goldNPLinks, rp: *goldRPLinks, npG: *goldNPGroups, rpG: *goldRPGroups}); err != nil {
		fmt.Fprintln(os.Stderr, "jocl:", err)
		os.Exit(1)
	}
}

// goldFiles carries the optional evaluation label paths.
type goldFiles struct{ np, rp, npG, rpG string }

func run(triplesPath, entitiesPath, relationsPath, factsPath,
	anchorsPath, corpusPath, paraphrasesPath, mode, features string, maxCandidates int, gold goldFiles) error {
	for name, p := range map[string]string{
		"-triples": triplesPath, "-entities": entitiesPath,
		"-relations": relationsPath, "-facts": factsPath,
	} {
		if p == "" {
			return fmt.Errorf("%s is required", name)
		}
	}

	triples, err := readTriples(triplesPath)
	if err != nil {
		return err
	}
	kb, err := readKB(entitiesPath, relationsPath, factsPath, anchorsPath)
	if err != nil {
		return err
	}

	opts := []jocl.Option{
		jocl.WithFeatureProfile(features),
		jocl.WithMaxCandidates(maxCandidates),
	}
	switch mode {
	case "joint":
	case "canon":
		opts = append(opts, jocl.WithoutLinking())
	case "link":
		opts = append(opts, jocl.WithoutCanonicalization())
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	if corpusPath != "" {
		sents, err := readCorpus(corpusPath)
		if err != nil {
			return err
		}
		opts = append(opts, jocl.WithCorpus(sents))
	}
	if paraphrasesPath != "" {
		groups, err := readParaphrases(paraphrasesPath)
		if err != nil {
			return err
		}
		opts = append(opts, jocl.WithParaphrases(groups))
	}

	p, err := jocl.New(triples, kb, opts...)
	if err != nil {
		return err
	}
	res, err := p.Run(nil)
	if err != nil {
		return err
	}
	printResult(kb, res)
	return evaluate(res, gold)
}

// evaluate scores the result against whatever gold files were given.
func evaluate(res *jocl.Result, gold goldFiles) error {
	readGold := func(path string) (map[string]string, error) {
		if path == "" {
			return nil, nil
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return kbio.ReadLabels(f)
	}
	if g, err := readGold(gold.np); err != nil {
		return err
	} else if g != nil {
		fmt.Printf("# entity linking accuracy: %.3f (over %d labeled NPs)\n",
			jocl.LinkingAccuracy(res.EntityLinks, g), len(g))
	}
	if g, err := readGold(gold.rp); err != nil {
		return err
	} else if g != nil {
		fmt.Printf("# relation linking accuracy: %.3f (over %d labeled RPs)\n",
			jocl.LinkingAccuracy(res.RelationLinks, g), len(g))
	}
	if g, err := readGold(gold.npG); err != nil {
		return err
	} else if g != nil {
		sc := jocl.EvaluateClustering(res.NPGroups, g)
		fmt.Printf("# NP canonicalization: macro %.3f  micro %.3f  pairwise %.3f  avg %.3f\n",
			sc.Macro.F1, sc.Micro.F1, sc.Pairwise.F1, sc.AverageF1)
	}
	if g, err := readGold(gold.rpG); err != nil {
		return err
	} else if g != nil {
		sc := jocl.EvaluateClustering(res.RPGroups, g)
		fmt.Printf("# RP canonicalization: macro %.3f  micro %.3f  pairwise %.3f  avg %.3f\n",
			sc.Macro.F1, sc.Micro.F1, sc.Pairwise.F1, sc.AverageF1)
	}
	return nil
}

func readTriples(path string) ([]jocl.Triple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return jocl.ReadTriplesTSV(f)
}

func readKB(entitiesPath, relationsPath, factsPath, anchorsPath string) (*jocl.KB, error) {
	ef, err := os.Open(entitiesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	ents, err := kbio.ReadEntities(ef)
	if err != nil {
		return nil, err
	}
	rf, err := os.Open(relationsPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	rels, err := kbio.ReadRelations(rf)
	if err != nil {
		return nil, err
	}
	ff, err := os.Open(factsPath)
	if err != nil {
		return nil, err
	}
	defer ff.Close()
	facts, err := kbio.ReadFacts(ff)
	if err != nil {
		return nil, err
	}

	es := make([]jocl.Entity, len(ents))
	for i, e := range ents {
		es[i] = jocl.Entity{ID: e.ID, Name: e.Name, Aliases: e.Aliases, Types: e.Types}
	}
	rs := make([]jocl.Relation, len(rels))
	for i, r := range rels {
		rs[i] = jocl.Relation{ID: r.ID, Name: r.Name, Category: r.Category, Aliases: r.Aliases}
	}
	fs := make([]jocl.Fact, len(facts))
	for i, f := range facts {
		fs[i] = jocl.Fact{Subject: f.Subj, Relation: f.Rel, Object: f.Obj}
	}
	kb, err := jocl.NewKB(es, rs, fs)
	if err != nil {
		return nil, err
	}
	if anchorsPath != "" {
		af, err := os.Open(anchorsPath)
		if err != nil {
			return nil, err
		}
		defer af.Close()
		anchors, err := kbio.ReadAnchors(af)
		if err != nil {
			return nil, err
		}
		for _, a := range anchors {
			kb.AddAnchor(a.Surface, a.Entity, a.Count)
		}
	}
	return kb, nil
}

func readCorpus(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kbio.ReadCorpus(f)
}

func readParaphrases(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kbio.ReadParaphrases(f)
}

func printResult(kb *jocl.KB, res *jocl.Result) {
	printGroups := func(header string, groups [][]string, links map[string]string, nameOf func(string) string) {
		fmt.Println(header)
		sorted := append([][]string(nil), groups...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
		for _, g := range sorted {
			target := ""
			if links != nil {
				if id := links[g[0]]; id != "" {
					target = fmt.Sprintf("  ->  %s (%s)", nameOf(id), id)
				} else {
					target = "  ->  (out of KB)"
				}
			}
			fmt.Printf("  %s%s\n", strings.Join(g, " | "), target)
		}
	}
	printGroups("# noun phrase groups", res.NPGroups, res.EntityLinks, kb.EntityName)
	printGroups("# relation phrase groups", res.RPGroups, res.RelationLinks, kb.RelationName)
	fmt.Printf("# stats: %d pair vars, %d link vars, %d factors, %d sweeps\n",
		res.Stats.NPPairVariables+res.Stats.RPPairVariables,
		res.Stats.LinkVariables, res.Stats.Factors, res.Stats.Sweeps)
}
