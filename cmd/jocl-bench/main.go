// Command jocl-bench regenerates the paper's tables and figures (and
// the extra design-choice ablations) over the synthetic benchmark
// suite, printing measured values with the paper's reported values in
// parentheses.
//
// Usage:
//
//	jocl-bench [-scale 0.02] [-exp all|table1|table2|table3|figure3|table4|figure4|extra|stream|segment|repair|query|checkpoint|traffic|retract]
//	           [-stream-batches 6] [-stream-preload 0.6] [-stream-out BENCH_stream.json]
//	           [-segment-batches 8] [-segment-preload 0.6] [-segment-tol 0.02]
//	           [-segment-out BENCH_segment.json]
//	           [-repair-batches 12] [-repair-preload 0.5] [-repair-tol 0.02]
//	           [-repair-out BENCH_repair.json]
//	           [-query-batches 12] [-query-preload 0.6] [-query-readers 8]
//	           [-query-out BENCH_query.json]
//	           [-checkpoint-batches 8] [-checkpoint-preload 0.6]
//	           [-checkpoint-out BENCH_checkpoint.json]
//	           [-traffic-batches 41] [-traffic-preload 0.6] [-traffic-clients 8]
//	           [-traffic-out BENCH_traffic.json]
//	           [-retract-batches 6] [-retract-preload 0.6] [-retract-readers 8]
//	           [-retract-out BENCH_retract.json]
//
// scale 1.0 reproduces the paper's data set sizes (45K/34K triples);
// the default keeps a laptop run under a minute.
//
// -exp stream runs the streaming-ingest benchmark (incremental session
// vs full per-batch rebuild; see internal/bench.RunStream) and, with
// -stream-out, writes the report as a JSON artifact.
//
// -exp segment runs the segmentation benchmark (hub-cut vs no-cut
// incremental ingest on the hub-fused workload, with result quality
// measured against exact whole-graph inference; see
// internal/bench.RunSegment) and, with -segment-out, writes the
// BENCH_segment.json artifact.
//
// -exp repair runs the persistent-partition benchmark (partition
// repair vs per-build re-partition on a rebuild-heavy stream; see
// internal/bench.RunRepair) and, with -repair-out, writes the
// BENCH_repair.json artifact.
//
// -exp query runs the read-path benchmark (delta-wise query-index
// maintenance vs full per-ingest rebuild, plus read throughput under
// concurrent ingest; see internal/bench.RunQuery) and, with
// -query-out, writes the BENCH_query.json artifact.
//
// -exp checkpoint runs the durability benchmark (restore a crashed
// session from its checkpoint vs replaying the whole stream cold, plus
// warm-continuation and equivalence checks; see
// internal/bench.RunCheckpoint) and, with -checkpoint-out, writes the
// BENCH_checkpoint.json artifact.
//
// -exp traffic runs the ingress traffic benchmark: the same open-loop
// mixed ingest/query schedule, offered at twice the synchronous
// per-batch capacity, replayed against the synchronous ingest path and
// the coalescing ingress pipeline (see internal/bench.RunTraffic).
// With -traffic-out it writes the BENCH_traffic.json artifact: client
// p50/p95/p99 ingest and read latencies, shed rate, coalescing factor,
// and the per-batch session cost ratio.
//
// -exp retract runs the retraction benchmark: retraction batches of
// geometrically growing size withdrawn from a fully loaded session
// (pricing retraction cost against the dirty-set size each repair
// touches), then as-of read throughput over the retained generations
// measured against head reads (see internal/bench.RunRetract). With
// -retract-out it writes the BENCH_retract.json artifact.
//
// Every streaming artifact additionally carries p50/p95/p99 latency
// digests (ingest_latency, and read_latency for the query benchmark)
// read back from the same telemetry histograms the serving stack
// exports on /metrics; the stream artifact also records a telemetry
// on/off A/B pricing the instrumentation overhead itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	var (
		scale          = flag.Float64("scale", 0.02, "fraction of the paper's data set sizes")
		exp            = flag.String("exp", "all", "experiment id (all, table1, table2, table3, figure3, table4, figure4, extra, stream, segment, repair, query, checkpoint, traffic, retract)")
		streamBatches  = flag.Int("stream-batches", 6, "stream: total batches (1 preload + N-1 increments)")
		streamPreload  = flag.Float64("stream-preload", 0.6, "stream: fraction of triples ingested as the preload batch")
		streamOut      = flag.String("stream-out", "", "stream: write the report JSON to this path (e.g. BENCH_stream.json)")
		segmentBatches = flag.Int("segment-batches", 8, "segment: total batches (1 preload + N-1 increments)")
		segmentPreload = flag.Float64("segment-preload", 0.6, "segment: fraction of triples ingested as the preload batch")
		segmentTol     = flag.Float64("segment-tol", 0.02, "segment: allowed F1/accuracy delta vs exact inference")
		segmentOut     = flag.String("segment-out", "", "segment: write the report JSON to this path (e.g. BENCH_segment.json)")
		repairBatches  = flag.Int("repair-batches", 12, "repair: total batches (1 preload + N-1 rebuild-heavy increments)")
		repairPreload  = flag.Float64("repair-preload", 0.5, "repair: fraction of triples ingested as the preload batch")
		repairTol      = flag.Float64("repair-tol", 0.02, "repair: allowed F1/accuracy delta vs exact inference")
		repairOut      = flag.String("repair-out", "", "repair: write the report JSON to this path (e.g. BENCH_repair.json)")
		queryBatches   = flag.Int("query-batches", 12, "query: total batches (1 preload + N-1 increments)")
		queryPreload   = flag.Float64("query-preload", 0.6, "query: fraction of triples ingested as the preload batch")
		queryReaders   = flag.Int("query-readers", 8, "query: concurrent reader goroutines hammering the index")
		queryOut       = flag.String("query-out", "", "query: write the report JSON to this path (e.g. BENCH_query.json)")
		ckptBatches    = flag.Int("checkpoint-batches", 8, "checkpoint: total batches (the last one lands after the simulated crash)")
		ckptPreload    = flag.Float64("checkpoint-preload", 0.6, "checkpoint: fraction of triples ingested as the preload batch")
		ckptOut        = flag.String("checkpoint-out", "", "checkpoint: write the report JSON to this path (e.g. BENCH_checkpoint.json)")
		trafficBatches = flag.Int("traffic-batches", 41, "traffic: total batches (1 preload + 3 calibration + N-4 open-loop)")
		trafficPreload = flag.Float64("traffic-preload", 0.6, "traffic: fraction of triples ingested as the preload batch")
		trafficClients = flag.Int("traffic-clients", 8, "traffic: concurrent ingest clients (and as many query clients)")
		trafficOut     = flag.String("traffic-out", "", "traffic: write the report JSON to this path (e.g. BENCH_traffic.json)")
		retractBatches = flag.Int("retract-batches", 6, "retract: ingest batches loaded before the retractions start")
		retractPreload = flag.Float64("retract-preload", 0.6, "retract: fraction of triples ingested as the preload batch")
		retractReaders = flag.Int("retract-readers", 8, "retract: concurrent reader goroutines in the head/as-of phases")
		retractOut     = flag.String("retract-out", "", "retract: write the report JSON to this path (e.g. BENCH_retract.json)")
		internScale    = flag.Float64("intern-scale", 0.1, "intern: fraction of the paper's data set sizes (the raised default matrix)")
		internBatches  = flag.Int("intern-batches", 25, "intern: total batches (1 preload + N-1 steady increments)")
		internPreload  = flag.Float64("intern-preload", 0.6, "intern: fraction of triples ingested as the preload batch")
		internWorkers  = flag.Int("intern-workers", 4, "intern: session worker pool size (>1 to exercise the parallel path)")
		internSpot     = flag.Float64("intern-spot", 0.5, "intern: larger-scale confirmation point (0 disables)")
		internOut      = flag.String("intern-out", "", "intern: write the report JSON to this path (e.g. BENCH_intern.json)")
		internGate     = flag.String("intern-gate", "", "intern: committed BENCH_intern.json to gate against (fail on >intern-tol% alloc regression)")
		internTol      = flag.Float64("intern-tol", 20, "intern: allowed steady-state allocs/ingest regression vs the gate baseline, percent")
		cpuProfile     = flag.String("cpuprofile", "", "write a CPU pprof profile of the experiment to this path")
		memProfile     = flag.String("memprofile", "", "write a heap pprof profile (after the experiment) to this path")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jocl-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			}
		}()
	}
	if *exp == "intern" {
		if err := runIntern(*internScale, *internPreload, *internBatches, *internWorkers, *internSpot, *internOut, *internGate, *internTol); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "stream" {
		if err := runStream(*scale, *streamPreload, *streamBatches, *streamOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "segment" {
		if err := runSegment(*scale, *segmentPreload, *segmentBatches, *segmentTol, *segmentOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "repair" {
		if err := runRepair(*scale, *repairPreload, *repairBatches, *repairTol, *repairOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "query" {
		if err := runQuery(*scale, *queryPreload, *queryBatches, *queryReaders, *queryOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "checkpoint" {
		if err := runCheckpoint(*scale, *ckptPreload, *ckptBatches, *ckptOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "traffic" {
		if err := runTraffic(*scale, *trafficPreload, *trafficBatches, *trafficClients, *trafficOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "retract" {
		if err := runRetract(*scale, *retractPreload, *retractBatches, *retractReaders, *retractOut); err != nil {
			fmt.Fprintln(os.Stderr, "jocl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*scale, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "jocl-bench:", err)
		os.Exit(1)
	}
}

func runIntern(scale, preload float64, batches, workers int, spot float64, out, gate string, tol float64) error {
	report, err := bench.RunIntern("reverb45k", scale, preload, batches, workers, spot)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if gate != "" {
		if err := bench.GateFile(report, gate, tol); err != nil {
			return err
		}
		fmt.Printf("intern gate passed (<=%.0f%% alloc regression vs %s)\n", tol, gate)
	}
	return nil
}

func runStream(scale, preload float64, batches int, out string) error {
	report, err := bench.RunStream("reverb45k", scale, preload, batches, 0)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runSegment(scale, preload float64, batches int, f1Tol float64, out string) error {
	report, err := bench.RunSegment("reverb45k", scale, preload, batches, 0, f1Tol)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runRepair(scale, preload float64, batches int, f1Tol float64, out string) error {
	report, err := bench.RunRepair("reverb45k", scale, preload, batches, 0, f1Tol)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runQuery(scale, preload float64, batches, readers int, out string) error {
	report, err := bench.RunQuery("reverb45k", scale, preload, batches, 0, readers)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runCheckpoint(scale, preload float64, batches int, out string) error {
	report, err := bench.RunCheckpoint("reverb45k", scale, preload, batches, 0)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runTraffic(scale, preload float64, batches, clients int, out string) error {
	report, err := bench.RunTraffic("reverb45k", scale, preload, batches, 0, clients)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runRetract(scale, preload float64, batches, readers int, out string) error {
	report, err := bench.RunRetract("reverb45k", scale, preload, batches, 0, readers)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func run(scale float64, exp string) error {
	fmt.Printf("generating benchmark suite at scale %g ...\n", scale)
	suite, err := bench.NewSuite(scale)
	if err != nil {
		return err
	}
	fmt.Printf("ReVerb45K: %d triples, %d entities; NYTimes2018: %d triples\n\n",
		suite.Reverb.OKB.Len(), len(suite.Reverb.CKB.EntityIDs()), suite.NYT.OKB.Len())

	runners := map[string]func() (*bench.Table, error){
		"table1":  suite.Table1,
		"table2":  suite.Table2,
		"table3":  suite.Table3,
		"figure3": suite.Figure3,
		"table4":  suite.Table4,
		"figure4": suite.Figure4,
	}
	printTable := func(t *bench.Table) {
		fmt.Println(t.Format())
	}

	switch exp {
	case "all":
		tables, err := suite.All()
		if err != nil {
			return err
		}
		for _, t := range tables {
			printTable(t)
		}
		extras, err := suite.Extras()
		if err != nil {
			return err
		}
		for _, t := range extras {
			printTable(t)
		}
	case "extra":
		extras, err := suite.Extras()
		if err != nil {
			return err
		}
		for _, t := range extras {
			printTable(t)
		}
	default:
		runner, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		t, err := runner()
		if err != nil {
			return err
		}
		printTable(t)
	}
	return nil
}
