// Command jocl-bench regenerates the paper's tables and figures (and
// the extra design-choice ablations) over the synthetic benchmark
// suite, printing measured values with the paper's reported values in
// parentheses.
//
// Usage:
//
//	jocl-bench [-scale 0.02] [-exp all|table1|table2|table3|figure3|table4|figure4|extra]
//
// scale 1.0 reproduces the paper's data set sizes (45K/34K triples);
// the default keeps a laptop run under a minute.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.02, "fraction of the paper's data set sizes")
		exp   = flag.String("exp", "all", "experiment id (all, table1, table2, table3, figure3, table4, figure4, extra)")
	)
	flag.Parse()
	if err := run(*scale, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "jocl-bench:", err)
		os.Exit(1)
	}
}

func run(scale float64, exp string) error {
	fmt.Printf("generating benchmark suite at scale %g ...\n", scale)
	suite, err := bench.NewSuite(scale)
	if err != nil {
		return err
	}
	fmt.Printf("ReVerb45K: %d triples, %d entities; NYTimes2018: %d triples\n\n",
		suite.Reverb.OKB.Len(), len(suite.Reverb.CKB.EntityIDs()), suite.NYT.OKB.Len())

	runners := map[string]func() (*bench.Table, error){
		"table1":  suite.Table1,
		"table2":  suite.Table2,
		"table3":  suite.Table3,
		"figure3": suite.Figure3,
		"table4":  suite.Table4,
		"figure4": suite.Figure4,
	}
	printTable := func(t *bench.Table) {
		fmt.Println(t.Format())
	}

	switch exp {
	case "all":
		tables, err := suite.All()
		if err != nil {
			return err
		}
		for _, t := range tables {
			printTable(t)
		}
		extras, err := suite.Extras()
		if err != nil {
			return err
		}
		for _, t := range extras {
			printTable(t)
		}
	case "extra":
		extras, err := suite.Extras()
		if err != nil {
			return err
		}
		for _, t := range extras {
			printTable(t)
		}
	default:
		runner, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		t, err := runner()
		if err != nil {
			return err
		}
		printTable(t)
	}
	return nil
}
